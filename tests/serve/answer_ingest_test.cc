// Unit tests for the serve-side arrival plumbing: the EventHub wake-up
// channel, the MPSC AnswerIngestQueue, and the SequenceReorderBuffer that
// turns any arrival order back into the deterministic commit order.

#include "serve/answer_ingest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace crowdrl::serve {
namespace {

CompletedAnswer Answer(uint64_t seq, int object = 0, int annotator = 0) {
  CompletedAnswer a;
  a.seq = seq;
  a.object = object;
  a.annotator = annotator;
  return a;
}

TEST(EventHubTest, NotifyBeforeWaitIsNotLost) {
  EventHub hub;
  hub.Notify();
  // Level-triggered: returns immediately instead of sleeping the full
  // timeout (generous bound keeps this robust on loaded machines).
  const auto start = std::chrono::steady_clock::now();
  hub.WaitFor(2'000'000);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(1));
}

TEST(EventHubTest, WaitConsumesTheSignal) {
  EventHub hub;
  hub.Notify();
  hub.WaitFor(0);
  // Second wait has nothing to consume; it should time out (quickly).
  const auto start = std::chrono::steady_clock::now();
  hub.WaitFor(1000);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::microseconds(500));
}

TEST(AnswerIngestQueueTest, DrainTakesEverythingInFifoOrder) {
  AnswerIngestQueue queue;
  queue.Push(Answer(3));
  queue.Push(Answer(1));
  queue.Push(Answer(2));
  EXPECT_EQ(queue.ApproxDepth(), 3u);
  std::vector<CompletedAnswer> drained = queue.Drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].seq, 3u);
  EXPECT_EQ(drained[1].seq, 1u);
  EXPECT_EQ(drained[2].seq, 2u);
  EXPECT_EQ(queue.ApproxDepth(), 0u);
  EXPECT_TRUE(queue.Drain().empty());
}

TEST(AnswerIngestQueueTest, ConcurrentProducersLoseNothing) {
  EventHub hub;
  AnswerIngestQueue queue(&hub);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 500;
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&queue, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        queue.Push(Answer(static_cast<uint64_t>(t) * kPerThread + i));
      }
    });
  }
  std::vector<CompletedAnswer> all;
  while (all.size() < kThreads * kPerThread) {
    for (const CompletedAnswer& a : queue.Drain()) all.push_back(a);
    hub.WaitFor(100);
  }
  for (std::thread& t : producers) t.join();
  std::vector<uint64_t> seqs;
  seqs.reserve(all.size());
  for (const CompletedAnswer& a : all) seqs.push_back(a.seq);
  std::sort(seqs.begin(), seqs.end());
  for (uint64_t i = 0; i < kThreads * kPerThread; ++i) {
    EXPECT_EQ(seqs[i], i);
  }
}

TEST(SequenceReorderBufferTest, PopsInSequenceOrderWhateverTheArrivalOrder) {
  SequenceReorderBuffer buffer;
  buffer.BeginRange(10, 3);
  EXPECT_TRUE(buffer.active());

  CompletedAnswer out;
  bool abandoned = false;
  EXPECT_TRUE(buffer.Offer(Answer(12, /*object=*/7)));
  // Head (seq 10) still outstanding: nothing pops yet.
  EXPECT_FALSE(buffer.PopReady(&out, &abandoned));

  EXPECT_TRUE(buffer.Offer(Answer(10, /*object=*/5)));
  ASSERT_TRUE(buffer.PopReady(&out, &abandoned));
  EXPECT_FALSE(abandoned);
  EXPECT_EQ(out.seq, 10u);
  EXPECT_EQ(out.object, 5);
  EXPECT_FALSE(buffer.PopReady(&out, &abandoned));  // Seq 11 outstanding.

  EXPECT_TRUE(buffer.Offer(Answer(11, /*object=*/6)));
  ASSERT_TRUE(buffer.PopReady(&out, &abandoned));
  EXPECT_EQ(out.seq, 11u);
  ASSERT_TRUE(buffer.PopReady(&out, &abandoned));
  EXPECT_EQ(out.seq, 12u);
  EXPECT_EQ(out.object, 7);
  EXPECT_EQ(buffer.remaining(), 0u);
  EXPECT_FALSE(buffer.active());
}

TEST(SequenceReorderBufferTest, AbandonedSlotsPopAsAbandoned) {
  SequenceReorderBuffer buffer;
  buffer.BeginRange(0, 3);
  buffer.Abandon(1);
  EXPECT_TRUE(buffer.Offer(Answer(0)));
  EXPECT_TRUE(buffer.Offer(Answer(2)));

  CompletedAnswer out;
  bool abandoned = false;
  ASSERT_TRUE(buffer.PopReady(&out, &abandoned));
  EXPECT_FALSE(abandoned);
  EXPECT_EQ(out.seq, 0u);
  ASSERT_TRUE(buffer.PopReady(&out, &abandoned));
  EXPECT_TRUE(abandoned);
  EXPECT_EQ(out.seq, 1u);
  ASSERT_TRUE(buffer.PopReady(&out, &abandoned));
  EXPECT_FALSE(abandoned);
  EXPECT_EQ(out.seq, 2u);
}

TEST(SequenceReorderBufferTest, LateEchoesAndForeignSeqsAreDropped) {
  SequenceReorderBuffer buffer;
  buffer.BeginRange(5, 2);
  EXPECT_FALSE(buffer.Offer(Answer(4)));   // Below the range.
  EXPECT_FALSE(buffer.Offer(Answer(7)));   // Above the range.
  EXPECT_TRUE(buffer.Offer(Answer(5)));
  EXPECT_FALSE(buffer.Offer(Answer(5)));   // Duplicate completion.
  buffer.Abandon(6);
  EXPECT_FALSE(buffer.Offer(Answer(6)));   // Echo of cancelled work.
  buffer.Abandon(5);                       // Ignored: already completed.

  CompletedAnswer out;
  bool abandoned = false;
  ASSERT_TRUE(buffer.PopReady(&out, &abandoned));
  EXPECT_FALSE(abandoned);
  ASSERT_TRUE(buffer.PopReady(&out, &abandoned));
  EXPECT_TRUE(abandoned);
}

TEST(SequenceReorderBufferTest, UnresolvedSeqsListsOutstandingOnly) {
  SequenceReorderBuffer buffer;
  buffer.BeginRange(100, 4);
  EXPECT_TRUE(buffer.Offer(Answer(101)));
  buffer.Abandon(103);
  std::vector<uint64_t> unresolved = buffer.UnresolvedSeqs();
  ASSERT_EQ(unresolved.size(), 2u);
  EXPECT_EQ(unresolved[0], 100u);
  EXPECT_EQ(unresolved[1], 102u);
}

TEST(SequenceReorderBufferTest, RangeCanRestartAfterDraining) {
  SequenceReorderBuffer buffer;
  buffer.BeginRange(0, 1);
  EXPECT_TRUE(buffer.Offer(Answer(0)));
  CompletedAnswer out;
  bool abandoned = false;
  ASSERT_TRUE(buffer.PopReady(&out, &abandoned));
  buffer.BeginRange(1, 2);
  EXPECT_EQ(buffer.first_seq(), 1u);
  EXPECT_EQ(buffer.remaining(), 2u);
  EXPECT_FALSE(buffer.Offer(Answer(0)));  // Previous round's seq.
}

}  // namespace
}  // namespace crowdrl::serve
