// The determinism bridge: a single-campaign labelling service with a
// never-disconnecting annotator pool and synchronous truth inference must
// reproduce the batch CrowdRlFramework::Run bit-for-bit — same labels,
// sources, budget, iteration count, qualities, EM log-likelihood, and the
// same (object, annotator, executed) assignment log in the same order —
// no matter what order the answers arrive in and at every thread count.
//
// This is the lockstep-twin pattern of tests/rl/shortlist_test.cc lifted
// to the whole service: answer sampling happens inside
// Environment::RequestAnswer at commit time, and the pump commits in
// sequence order, so arrival order is provably irrelevant.

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <random>
#include <thread>
#include <vector>

#include "core/crowdrl.h"
#include "serve/service.h"

namespace crowdrl::serve {
namespace {

constexpr double kBudget = 500.0;
constexpr uint64_t kSeed = 11;

struct Workload {
  data::Dataset dataset;
  std::vector<crowd::Annotator> pool;

  explicit Workload(size_t objects = 150, uint64_t seed = 3) {
    data::GaussianMixtureOptions options;
    options.num_objects = objects;
    options.view = {10, 2.6, 0.5};
    options.seed = seed;
    dataset = data::MakeGaussianMixture(options);
    crowd::PoolOptions pool_options;
    pool_options.num_workers = 3;
    pool_options.num_experts = 2;
    pool_options.seed = seed + 1;
    pool = crowd::MakePool(pool_options);
  }
};

core::CrowdRlConfig TestConfig(int agent_threads) {
  core::CrowdRlConfig config;
  config.max_iterations = 200;
  config.agent.threads = agent_threads;
  return config;
}

struct RunOutcome {
  core::LabellingResult result;
  std::vector<core::AssignmentRecord> log;
};

RunOutcome RunBatch(const Workload& w, int agent_threads) {
  core::CrowdRlFramework framework(TestConfig(agent_threads));
  RunOutcome out;
  EXPECT_TRUE(
      framework.Run(w.dataset, w.pool, kBudget, kSeed, &out.result).ok());
  out.log = framework.last_assignment_log();
  return out;
}

enum class ServeOrder { kInOrder, kReversed, kThreadedJitter };

// Drives a single synchronous-TI campaign to completion, serving every
// annotator inbox according to `order`:
//   kInOrder         — completions pushed in dispatch order;
//   kReversed        — each pass's completions pushed newest-first, so
//                      every round arrives maximally out of order;
//   kThreadedJitter  — one real driver thread per annotator with random
//                      think time, racing the pump through the MPSC queue.
RunOutcome RunServe(const Workload& w, int agent_threads, ServeOrder order,
                    bool instrumented = false) {
  ServiceOptions service_options;
  if (instrumented) {
    service_options.watchdog.enabled = true;
    service_options.watchdog.tick_micros = 1'000;
  }
  LabellingService service(service_options);
  CampaignOptions options;
  options.name = "bridge";
  options.config = TestConfig(agent_threads);
  options.synchronous_inference = true;
  if (instrumented) {
    // The whole observability stack at once: lifecycle tracing, the
    // flight-recorder ring, and the health watchdog. None of it may
    // perturb the run (hooks read clocks and bump atomics; answer
    // sampling happens at commit time on the pump thread).
    options.config.obs.enabled = true;
    options.config.obs.lifecycle = true;
    options.config.obs.flight_recorder = true;
  }
  Campaign* campaign = service.AddCampaign(options, &w.dataset, &w.pool,
                                           kBudget, kSeed);
  EXPECT_TRUE(service.StartAll().ok());
  campaign->sessions().ConnectAll();

  if (order == ServeOrder::kThreadedJitter) {
    std::atomic<bool> stop{false};
    std::vector<std::thread> drivers;
    drivers.reserve(w.pool.size());
    for (int j = 0; j < static_cast<int>(w.pool.size()); ++j) {
      drivers.emplace_back([&, j] {
        std::mt19937 rng(static_cast<unsigned>(j) + 1);
        std::uniform_int_distribution<int> think_us(0, 200);
        while (!stop.load(std::memory_order_acquire)) {
          std::optional<WorkItem> item = campaign->sessions().RequestWork(j);
          if (item.has_value()) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(think_us(rng)));
            campaign->ingest().Push(*item);
          } else {
            std::this_thread::yield();
          }
        }
      });
    }
    EXPECT_TRUE(service.RunUntilComplete().ok());
    stop.store(true, std::memory_order_release);
    for (std::thread& t : drivers) t.join();
  } else {
    size_t idle_passes = 0;
    while (!campaign->done()) {
      bool progress = service.PumpOnce();
      std::vector<WorkItem> batch;
      for (int j = 0; j < static_cast<int>(w.pool.size()); ++j) {
        while (std::optional<WorkItem> item =
                   campaign->sessions().RequestWork(j)) {
          batch.push_back(*item);
        }
      }
      if (order == ServeOrder::kReversed) {
        for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
          campaign->ingest().Push(*it);
        }
      } else {
        for (const WorkItem& item : batch) campaign->ingest().Push(item);
      }
      idle_passes = (progress || !batch.empty()) ? 0 : idle_passes + 1;
      if (idle_passes >= 10000u) {
        ADD_FAILURE() << "service pump wedged";
        break;
      }
    }
  }

  EXPECT_EQ(campaign->state(), Campaign::State::kComplete)
      << campaign->status().ToString();
  EXPECT_GT(campaign->answers_committed(), 0u);
  // Bootstrap answers are bought before the service opens, so the live
  // commit count is a strict subset of the run's human answers.
  EXPECT_LE(campaign->answers_committed(), campaign->result().human_answers);
  return RunOutcome{campaign->result(), campaign->assignment_log()};
}

void ExpectBitIdentical(const RunOutcome& serve, const RunOutcome& batch) {
  EXPECT_EQ(serve.result.labels, batch.result.labels);
  EXPECT_EQ(serve.result.sources, batch.result.sources);
  EXPECT_EQ(serve.result.budget_spent, batch.result.budget_spent);
  EXPECT_EQ(serve.result.iterations, batch.result.iterations);
  EXPECT_EQ(serve.result.human_answers, batch.result.human_answers);
  EXPECT_EQ(serve.result.final_annotator_qualities,
            batch.result.final_annotator_qualities);
  EXPECT_EQ(serve.result.final_log_likelihood,
            batch.result.final_log_likelihood);
  EXPECT_EQ(serve.log, batch.log);
}

TEST(ServeBridgeTest, InOrderArrivalsMatchBatchSingleThread) {
  Workload w;
  ExpectBitIdentical(RunServe(w, /*agent_threads=*/1, ServeOrder::kInOrder),
                     RunBatch(w, /*agent_threads=*/1));
}

TEST(ServeBridgeTest, ReversedArrivalsMatchBatchSingleThread) {
  Workload w;
  ExpectBitIdentical(RunServe(w, /*agent_threads=*/1, ServeOrder::kReversed),
                     RunBatch(w, /*agent_threads=*/1));
}

TEST(ServeBridgeTest, InOrderArrivalsMatchBatchEightThreads) {
  Workload w;
  ExpectBitIdentical(RunServe(w, /*agent_threads=*/8, ServeOrder::kInOrder),
                     RunBatch(w, /*agent_threads=*/8));
}

TEST(ServeBridgeTest, ThreadedDriversMatchBatch) {
  Workload w;
  ExpectBitIdentical(
      RunServe(w, /*agent_threads=*/1, ServeOrder::kThreadedJitter),
      RunBatch(w, /*agent_threads=*/1));
}

// Thread-count invariance composes through the service: the same serve
// run at 1 and 8 agent threads agrees bit-for-bit (ThreadPool chunks
// write disjoint outputs; reductions are serial).
TEST(ServeBridgeTest, ServeItselfIsThreadCountInvariant) {
  Workload w;
  ExpectBitIdentical(RunServe(w, /*agent_threads=*/8, ServeOrder::kReversed),
                     RunServe(w, /*agent_threads=*/1, ServeOrder::kInOrder));
}

// The observability non-perturbation contract (DESIGN.md §15): a serve
// run with lifecycle tracing, the flight recorder, and the health
// watchdog all enabled is byte-identical to the uninstrumented run. The
// uninstrumented twin runs first — obs switches are process-global and
// enable-only, so the order proves the clean baseline, then the
// instrumented run must land on exactly the same bits.
TEST(ServeBridgeTest, FullyInstrumentedServeMatchesUninstrumentedSingleThread) {
  Workload w;
  RunOutcome plain = RunServe(w, /*agent_threads=*/1, ServeOrder::kInOrder);
  RunOutcome instrumented = RunServe(w, /*agent_threads=*/1,
                                     ServeOrder::kInOrder,
                                     /*instrumented=*/true);
  ExpectBitIdentical(instrumented, plain);
}

TEST(ServeBridgeTest, FullyInstrumentedServeMatchesUninstrumentedEightThreads) {
  Workload w;
  RunOutcome plain = RunServe(w, /*agent_threads=*/8, ServeOrder::kReversed);
  RunOutcome instrumented = RunServe(w, /*agent_threads=*/8,
                                     ServeOrder::kReversed,
                                     /*instrumented=*/true);
  ExpectBitIdentical(instrumented, plain);
}

}  // namespace
}  // namespace crowdrl::serve
