// Serving with the quantized-int8 compute backend: selection numerics are
// error-bounded rather than bit-identical to the reference kernels, but the
// campaign itself must stay fully deterministic — two identical quantized
// runs commit the same answers, spend the same budget, and finish with the
// same labels, because quantized inference is a pure function of the packed
// weights and the commit order is pinned by the sequence-reorder contract.
// Also covers the drift-event plumbing: a scoring-backend switch bumps the
// ScoreCache rebuild epoch so shortlist bounds from one numeric regime
// never gate selections scored under another.

#include <gtest/gtest.h>

#include <vector>

#include "core/crowdrl.h"
#include "math/backend.h"
#include "rl/score_cache.h"
#include "serve/service.h"

namespace crowdrl::serve {
namespace {

constexpr double kBudget = 400.0;
constexpr uint64_t kSeed = 17;

struct Workload {
  data::Dataset dataset;
  std::vector<crowd::Annotator> pool;

  explicit Workload(size_t objects = 120, uint64_t seed = 5) {
    data::GaussianMixtureOptions options;
    options.num_objects = objects;
    options.view = {10, 2.4, 0.5};
    options.seed = seed;
    dataset = data::MakeGaussianMixture(options);
    crowd::PoolOptions pool_options;
    pool_options.num_workers = 3;
    pool_options.num_experts = 2;
    pool_options.seed = seed + 1;
    pool = crowd::MakePool(pool_options);
  }
};

struct RunOutcome {
  core::LabellingResult result;
  std::vector<core::AssignmentRecord> log;
  size_t answers_committed = 0;
};

// Single synchronous-TI campaign pumped to completion with in-order
// arrivals (the deterministic drive of tests/serve/bridge_test.cc).
RunOutcome RunCampaign(const Workload& w, math::BackendKind backend) {
  LabellingService service;
  CampaignOptions options;
  options.name = "quantized_serve";
  options.config.max_iterations = 200;
  options.config.agent.inference_backend = backend;
  options.synchronous_inference = true;
  Campaign* campaign =
      service.AddCampaign(options, &w.dataset, &w.pool, kBudget, kSeed);
  EXPECT_TRUE(service.StartAll().ok());
  campaign->sessions().ConnectAll();

  size_t idle_passes = 0;
  while (!campaign->done()) {
    bool progress = service.PumpOnce();
    bool served = false;
    for (int j = 0; j < static_cast<int>(w.pool.size()); ++j) {
      while (std::optional<WorkItem> item =
                 campaign->sessions().RequestWork(j)) {
        campaign->ingest().Push(*item);
        served = true;
      }
    }
    idle_passes = (progress || served) ? 0 : idle_passes + 1;
    if (idle_passes >= 10000u) {
      ADD_FAILURE() << "service pump wedged";
      break;
    }
  }
  EXPECT_EQ(campaign->state(), Campaign::State::kComplete)
      << campaign->status().ToString();
  return RunOutcome{campaign->result(), campaign->assignment_log(),
                    campaign->answers_committed()};
}

void ExpectBitIdentical(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.result.labels, b.result.labels);
  EXPECT_EQ(a.result.sources, b.result.sources);
  EXPECT_EQ(a.result.budget_spent, b.result.budget_spent);
  EXPECT_EQ(a.result.iterations, b.result.iterations);
  EXPECT_EQ(a.result.human_answers, b.result.human_answers);
  EXPECT_EQ(a.result.final_log_likelihood, b.result.final_log_likelihood);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.answers_committed, b.answers_committed);
}

TEST(QuantizedServeTest, QuantizedCampaignIsDeterministic) {
  Workload w;
  RunOutcome first = RunCampaign(w, math::BackendKind::kQuantizedInt8);
  RunOutcome second = RunCampaign(w, math::BackendKind::kQuantizedInt8);
  EXPECT_GT(first.answers_committed, 0u);
  ExpectBitIdentical(first, second);
}

TEST(QuantizedServeTest, QuantizedCampaignLabelsEveryObject) {
  Workload w;
  RunOutcome out = RunCampaign(w, math::BackendKind::kQuantizedInt8);
  ASSERT_EQ(out.result.labels.size(), w.dataset.num_objects());
  for (int label : out.result.labels) EXPECT_GE(label, 0);
  EXPECT_LE(out.result.budget_spent, kBudget);
}

// The reference-backend campaign through the same harness is this test
// file's control: selection quality (objects labelled, budget respected)
// must hold under both numeric regimes.
TEST(QuantizedServeTest, ReferenceControlCompletesIdenticallyShaped) {
  Workload w;
  RunOutcome reference = RunCampaign(w, math::BackendKind::kReference);
  RunOutcome quantized = RunCampaign(w, math::BackendKind::kQuantizedInt8);
  EXPECT_EQ(reference.result.labels.size(), quantized.result.labels.size());
  EXPECT_GT(reference.answers_committed, 0u);
  EXPECT_GT(quantized.answers_committed, 0u);
}

TEST(QuantizedServeTest, BackendSwitchBumpsScoreCacheEpoch) {
  rl::ScoreCache cache;
  const size_t before = cache.rebuild_epoch();
  cache.NoteScoringBackendSwitch();
  EXPECT_EQ(cache.rebuild_epoch(), before + 1);
  EXPECT_EQ(cache.global_drift(), 0.0);
}

}  // namespace
}  // namespace crowdrl::serve
