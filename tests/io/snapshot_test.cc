#include "io/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "classifier/mlp_classifier.h"
#include "core/environment.h"
#include "core/framework.h"
#include "crowd/answer_log.h"
#include "crowd/budget.h"
#include "crowd/confusion_matrix.h"
#include "io/checkpointable.h"
#include "math/matrix.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "rl/dqn_agent.h"
#include "rl/q_network.h"
#include "rl/replay_buffer.h"
#include "util/random.h"

namespace crowdrl::io {
namespace {

// The serialization surface is a concept, not a base class; assert here
// that every persistable component actually satisfies it, so a signature
// drift is a compile error in this test rather than a template error at a
// distant call site.
static_assert(Checkpointable<Matrix>);
static_assert(Checkpointable<nn::Mlp>);
static_assert(Checkpointable<nn::Sgd>);
static_assert(Checkpointable<nn::Adam>);
static_assert(Checkpointable<rl::ReplayBuffer>);
static_assert(Checkpointable<rl::QNetwork>);
static_assert(Checkpointable<rl::DqnAgent>);
static_assert(Checkpointable<crowd::AnswerLog>);
static_assert(Checkpointable<crowd::Budget>);
static_assert(Checkpointable<crowd::ConfusionMatrix>);
static_assert(Checkpointable<classifier::MlpClassifier>);
static_assert(Checkpointable<core::LabelState>);
static_assert(Checkpointable<core::Environment>);
// Rng deliberately is not Checkpointable (it lives below crowdrl_io);
// it round-trips through SaveStateString/LoadStateString instead.
static_assert(!Checkpointable<Rng>);

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "crowdrl_snapshot_test_" + name;
}

std::string FreshDir(const std::string& name) {
  std::string dir = TempPath(name);
  std::filesystem::remove_all(dir);
  return dir;
}

SnapshotBuilder MakeTwoSectionBuilder() {
  SnapshotBuilder builder;
  Writer* alpha = builder.AddSection("alpha");
  alpha->WriteU32(7);
  alpha->WriteDouble(2.5);
  Writer* beta = builder.AddSection("beta");
  beta->WriteString("payload");
  return builder;
}

void ExpectTwoSectionContent(const Snapshot& snapshot) {
  EXPECT_EQ(snapshot.SectionNames(),
            (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_TRUE(snapshot.HasSection("alpha"));
  EXPECT_FALSE(snapshot.HasSection("gamma"));

  Reader reader;
  ASSERT_TRUE(snapshot.OpenSection("alpha", &reader).ok());
  uint32_t u = 0;
  double d = 0.0;
  ASSERT_TRUE(reader.ReadU32(&u).ok());
  ASSERT_TRUE(reader.ReadDouble(&d).ok());
  EXPECT_TRUE(reader.ExpectEnd().ok());
  EXPECT_EQ(u, 7u);
  EXPECT_EQ(d, 2.5);

  ASSERT_TRUE(snapshot.OpenSection("beta", &reader).ok());
  std::string s;
  ASSERT_TRUE(reader.ReadString(&s).ok());
  EXPECT_TRUE(reader.ExpectEnd().ok());
  EXPECT_EQ(s, "payload");

  EXPECT_TRUE(snapshot.OpenSection("gamma", &reader).IsNotFound());
}

TEST(SnapshotTest, SerializeParseRoundTrip) {
  std::string bytes = MakeTwoSectionBuilder().Serialize();
  Snapshot snapshot;
  ASSERT_TRUE(Snapshot::Parse(std::move(bytes), &snapshot).ok());
  ExpectTwoSectionContent(snapshot);
}

TEST(SnapshotTest, EmptySnapshotRoundTrips) {
  SnapshotBuilder builder;
  Snapshot snapshot;
  ASSERT_TRUE(Snapshot::Parse(builder.Serialize(), &snapshot).ok());
  EXPECT_TRUE(snapshot.SectionNames().empty());
}

TEST(SnapshotTest, WriteFileReadFileRoundTrip) {
  std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(MakeTwoSectionBuilder().WriteFile(path).ok());
  Snapshot snapshot;
  ASSERT_TRUE(Snapshot::ReadFile(path, &snapshot).ok());
  ExpectTwoSectionContent(snapshot);
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  Snapshot snapshot;
  EXPECT_TRUE(
      Snapshot::ReadFile(TempPath("does_not_exist.ckpt"), &snapshot)
          .IsNotFound());
}

TEST(SnapshotTest, BadMagicIsInvalidArgument) {
  std::string bytes = MakeTwoSectionBuilder().Serialize();
  bytes[0] = 'X';
  Snapshot snapshot;
  EXPECT_TRUE(
      Snapshot::Parse(std::move(bytes), &snapshot).IsInvalidArgument());
}

TEST(SnapshotTest, EveryBitFlipIsDetected) {
  // Flip one bit in a spread of positions past the magic: header fields,
  // section framing, payload bytes, and the CRC trailer itself. All must
  // be rejected (DataLoss for body corruption; the corrupted-CRC case is
  // also a mismatch).
  const std::string pristine = MakeTwoSectionBuilder().Serialize();
  for (size_t pos = 8; pos < pristine.size(); pos += 3) {
    std::string bytes = pristine;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x10);
    Snapshot snapshot;
    Status status = Snapshot::Parse(std::move(bytes), &snapshot);
    EXPECT_TRUE(status.IsDataLoss())
        << "bit flip at byte " << pos << " got: " << status.ToString();
  }
}

TEST(SnapshotTest, TruncationIsDataLoss) {
  const std::string pristine = MakeTwoSectionBuilder().Serialize();
  for (size_t keep : {pristine.size() - 1, pristine.size() / 2, size_t{0}}) {
    Snapshot snapshot;
    EXPECT_TRUE(Snapshot::Parse(pristine.substr(0, keep), &snapshot)
                    .IsDataLoss())
        << "truncated to " << keep << " bytes";
  }
}

TEST(SnapshotTest, TrailingGarbageIsDataLoss) {
  std::string bytes = MakeTwoSectionBuilder().Serialize();
  bytes += "extra";
  Snapshot snapshot;
  EXPECT_TRUE(Snapshot::Parse(std::move(bytes), &snapshot).IsDataLoss());
}

TEST(SnapshotTest, NewerFormatVersionIsRejected) {
  std::string bytes = MakeTwoSectionBuilder().Serialize();
  // Patch the version field (bytes 8..11, little-endian) to a future
  // version, then re-fix the CRC trailer so only the version is wrong.
  uint32_t future = kSnapshotFormatVersion + 1;
  for (int i = 0; i < 4; ++i) {
    bytes[8 + i] = static_cast<char>((future >> (8 * i)) & 0xFF);
  }
  uint32_t crc = Crc32(bytes.data(), bytes.size() - 4);
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + i] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  Snapshot snapshot;
  Status status = Snapshot::Parse(std::move(bytes), &snapshot);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST(CheckpointDirTest, FileNamesSortByIteration) {
  EXPECT_EQ(CheckpointFileName(7), "ckpt-000000000007.ckpt");
  EXPECT_LT(CheckpointFileName(9), CheckpointFileName(10));
  EXPECT_LT(CheckpointFileName(99), CheckpointFileName(100));
}

TEST(CheckpointDirTest, RotationKeepsNewestK) {
  std::string dir = FreshDir("rotation");
  for (size_t t = 1; t <= 5; ++t) {
    SnapshotBuilder builder;
    builder.AddSection("meta")->WriteSize(t);
    ASSERT_TRUE(WriteCheckpointRotating(builder, dir, t, 2).ok());
  }
  std::string latest;
  ASSERT_TRUE(FindLatestCheckpoint(dir, &latest).ok());
  EXPECT_NE(latest.find(CheckpointFileName(5)), std::string::npos);

  // Only the newest two survive, and the oldest survivor is iteration 4.
  Snapshot snapshot;
  EXPECT_TRUE(
      Snapshot::ReadFile(dir + "/" + CheckpointFileName(3), &snapshot)
          .IsNotFound());
  EXPECT_TRUE(
      Snapshot::ReadFile(dir + "/" + CheckpointFileName(4), &snapshot)
          .ok());
}

TEST(CheckpointDirTest, KeepLastZeroKeepsEverything) {
  std::string dir = FreshDir("keep_all");
  for (size_t t = 1; t <= 4; ++t) {
    SnapshotBuilder builder;
    builder.AddSection("meta")->WriteSize(t);
    ASSERT_TRUE(WriteCheckpointRotating(builder, dir, t, 0).ok());
  }
  Snapshot snapshot;
  for (size_t t = 1; t <= 4; ++t) {
    EXPECT_TRUE(
        Snapshot::ReadFile(dir + "/" + CheckpointFileName(t), &snapshot)
            .ok())
        << "iteration " << t;
  }
}

TEST(CheckpointDirTest, FindLatestOnMissingOrEmptyDirIsNotFound) {
  std::string latest;
  EXPECT_TRUE(
      FindLatestCheckpoint(TempPath("never_created"), &latest).IsNotFound());
  EXPECT_TRUE(FindLatestCheckpoint("", &latest).IsInvalidArgument());
}

TEST(CheckpointDirTest, AtomicWriteLeavesNoTmpFile) {
  std::string path = TempPath("atomic.ckpt");
  ASSERT_TRUE(MakeTwoSectionBuilder().WriteFile(path).ok());
  Snapshot snapshot;
  EXPECT_TRUE(Snapshot::ReadFile(path, &snapshot).ok());
  EXPECT_TRUE(
      Snapshot::ReadFile(path + ".tmp", &snapshot).IsNotFound());
}

}  // namespace
}  // namespace crowdrl::io
