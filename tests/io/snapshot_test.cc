#include "io/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "classifier/mlp_classifier.h"
#include "core/environment.h"
#include "core/framework.h"
#include "crowd/answer_log.h"
#include "crowd/budget.h"
#include "crowd/confusion_matrix.h"
#include "io/checkpointable.h"
#include "math/matrix.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "rl/dqn_agent.h"
#include "rl/q_network.h"
#include "rl/replay_buffer.h"
#include "util/random.h"

namespace crowdrl::io {
namespace {

// The serialization surface is a concept, not a base class; assert here
// that every persistable component actually satisfies it, so a signature
// drift is a compile error in this test rather than a template error at a
// distant call site.
static_assert(Checkpointable<Matrix>);
static_assert(Checkpointable<nn::Mlp>);
static_assert(Checkpointable<nn::Sgd>);
static_assert(Checkpointable<nn::Adam>);
static_assert(Checkpointable<rl::ReplayBuffer>);
static_assert(Checkpointable<rl::QNetwork>);
static_assert(Checkpointable<rl::DqnAgent>);
static_assert(Checkpointable<crowd::AnswerLog>);
static_assert(Checkpointable<crowd::Budget>);
static_assert(Checkpointable<crowd::ConfusionMatrix>);
static_assert(Checkpointable<classifier::MlpClassifier>);
static_assert(Checkpointable<core::LabelState>);
static_assert(Checkpointable<core::Environment>);
// Rng deliberately is not Checkpointable (it lives below crowdrl_io);
// it round-trips through SaveStateString/LoadStateString instead.
static_assert(!Checkpointable<Rng>);

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "crowdrl_snapshot_test_" + name;
}

std::string FreshDir(const std::string& name) {
  std::string dir = TempPath(name);
  std::filesystem::remove_all(dir);
  return dir;
}

SnapshotBuilder MakeTwoSectionBuilder() {
  SnapshotBuilder builder;
  Writer* alpha = builder.AddSection("alpha");
  alpha->WriteU32(7);
  alpha->WriteDouble(2.5);
  Writer* beta = builder.AddSection("beta");
  beta->WriteString("payload");
  return builder;
}

void ExpectTwoSectionContent(const Snapshot& snapshot) {
  EXPECT_EQ(snapshot.SectionNames(),
            (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_TRUE(snapshot.HasSection("alpha"));
  EXPECT_FALSE(snapshot.HasSection("gamma"));

  Reader reader;
  ASSERT_TRUE(snapshot.OpenSection("alpha", &reader).ok());
  uint32_t u = 0;
  double d = 0.0;
  ASSERT_TRUE(reader.ReadU32(&u).ok());
  ASSERT_TRUE(reader.ReadDouble(&d).ok());
  EXPECT_TRUE(reader.ExpectEnd().ok());
  EXPECT_EQ(u, 7u);
  EXPECT_EQ(d, 2.5);

  ASSERT_TRUE(snapshot.OpenSection("beta", &reader).ok());
  std::string s;
  ASSERT_TRUE(reader.ReadString(&s).ok());
  EXPECT_TRUE(reader.ExpectEnd().ok());
  EXPECT_EQ(s, "payload");

  EXPECT_TRUE(snapshot.OpenSection("gamma", &reader).IsNotFound());
}

TEST(SnapshotTest, SerializeParseRoundTrip) {
  std::string bytes = MakeTwoSectionBuilder().Serialize();
  Snapshot snapshot;
  ASSERT_TRUE(Snapshot::Parse(std::move(bytes), &snapshot).ok());
  ExpectTwoSectionContent(snapshot);
}

TEST(SnapshotTest, EmptySnapshotRoundTrips) {
  SnapshotBuilder builder;
  Snapshot snapshot;
  ASSERT_TRUE(Snapshot::Parse(builder.Serialize(), &snapshot).ok());
  EXPECT_TRUE(snapshot.SectionNames().empty());
}

TEST(SnapshotTest, WriteFileReadFileRoundTrip) {
  std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(MakeTwoSectionBuilder().WriteFile(path).ok());
  Snapshot snapshot;
  ASSERT_TRUE(Snapshot::ReadFile(path, &snapshot).ok());
  ExpectTwoSectionContent(snapshot);
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  Snapshot snapshot;
  EXPECT_TRUE(
      Snapshot::ReadFile(TempPath("does_not_exist.ckpt"), &snapshot)
          .IsNotFound());
}

TEST(SnapshotTest, BadMagicIsInvalidArgument) {
  std::string bytes = MakeTwoSectionBuilder().Serialize();
  bytes[0] = 'X';
  Snapshot snapshot;
  EXPECT_TRUE(
      Snapshot::Parse(std::move(bytes), &snapshot).IsInvalidArgument());
}

TEST(SnapshotTest, EveryBitFlipIsDetected) {
  // Flip one bit in a spread of positions past the magic: header fields,
  // section framing, payload bytes, and the CRC trailer itself. All must
  // be rejected (DataLoss for body corruption; the corrupted-CRC case is
  // also a mismatch).
  const std::string pristine = MakeTwoSectionBuilder().Serialize();
  for (size_t pos = 8; pos < pristine.size(); pos += 3) {
    std::string bytes = pristine;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x10);
    Snapshot snapshot;
    Status status = Snapshot::Parse(std::move(bytes), &snapshot);
    EXPECT_TRUE(status.IsDataLoss())
        << "bit flip at byte " << pos << " got: " << status.ToString();
  }
}

TEST(SnapshotTest, TruncationIsDataLoss) {
  const std::string pristine = MakeTwoSectionBuilder().Serialize();
  for (size_t keep : {pristine.size() - 1, pristine.size() / 2, size_t{0}}) {
    Snapshot snapshot;
    EXPECT_TRUE(Snapshot::Parse(pristine.substr(0, keep), &snapshot)
                    .IsDataLoss())
        << "truncated to " << keep << " bytes";
  }
}

TEST(SnapshotTest, TrailingGarbageIsDataLoss) {
  std::string bytes = MakeTwoSectionBuilder().Serialize();
  bytes += "extra";
  Snapshot snapshot;
  EXPECT_TRUE(Snapshot::Parse(std::move(bytes), &snapshot).IsDataLoss());
}

TEST(SnapshotTest, NewerFormatVersionIsRejected) {
  std::string bytes = MakeTwoSectionBuilder().Serialize();
  // Patch the version field (bytes 8..11, little-endian) to a future
  // version, then re-fix the CRC trailer so only the version is wrong.
  uint32_t future = kSnapshotFormatVersion + 1;
  for (int i = 0; i < 4; ++i) {
    bytes[8 + i] = static_cast<char>((future >> (8 * i)) & 0xFF);
  }
  uint32_t crc = Crc32(bytes.data(), bytes.size() - 4);
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + i] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  Snapshot snapshot;
  Status status = Snapshot::Parse(std::move(bytes), &snapshot);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST(SnapshotStreamTest, StreamedFileIsByteIdenticalToSerialize) {
  std::string path = TempPath("streamed.ckpt");
  SnapshotStreamWriter stream;
  ASSERT_TRUE(stream.Open(path, 2).ok());
  {
    Writer alpha;
    alpha.WriteU32(7);
    alpha.WriteDouble(2.5);
    ASSERT_TRUE(stream.AppendSection("alpha", alpha).ok());
  }  // Payload freed before the next section is even built.
  {
    Writer beta;
    beta.WriteString("payload");
    ASSERT_TRUE(stream.AppendSection("beta", beta).ok());
  }
  ASSERT_TRUE(stream.Close().ok());

  std::ifstream in(path, std::ios::binary);
  std::string streamed((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(streamed, MakeTwoSectionBuilder().Serialize());
}

TEST(SnapshotStreamTest, StreamReaderReadsBuilderFiles) {
  std::string path = TempPath("stream_read.ckpt");
  ASSERT_TRUE(MakeTwoSectionBuilder().WriteFile(path).ok());

  SnapshotStreamReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_EQ(reader.SectionNames(),
            (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_TRUE(reader.HasSection("alpha"));
  EXPECT_FALSE(reader.HasSection("gamma"));

  std::string buffer;
  Reader section;
  ASSERT_TRUE(reader.ReadSection("alpha", &buffer, &section).ok());
  uint32_t u = 0;
  double d = 0.0;
  ASSERT_TRUE(section.ReadU32(&u).ok());
  ASSERT_TRUE(section.ReadDouble(&d).ok());
  EXPECT_TRUE(section.ExpectEnd().ok());
  EXPECT_EQ(u, 7u);
  EXPECT_EQ(d, 2.5);

  ASSERT_TRUE(reader.ReadSection("beta", &buffer, &section).ok());
  std::string s;
  ASSERT_TRUE(section.ReadString(&s).ok());
  EXPECT_EQ(s, "payload");

  EXPECT_TRUE(reader.ReadSection("gamma", &buffer, &section).IsNotFound());
}

TEST(SnapshotStreamTest, StreamReaderRejectsCorruptionAndTruncation) {
  std::string path = TempPath("stream_corrupt.ckpt");
  const std::string pristine = MakeTwoSectionBuilder().Serialize();

  auto write_bytes = [&](const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  SnapshotStreamReader reader;
  EXPECT_TRUE(reader.Open(TempPath("stream_missing.ckpt")).IsNotFound());

  std::string flipped = pristine;
  flipped[pristine.size() / 2] =
      static_cast<char>(flipped[pristine.size() / 2] ^ 0x10);
  write_bytes(flipped);
  EXPECT_TRUE(reader.Open(path).IsDataLoss());

  write_bytes(pristine.substr(0, pristine.size() / 2));
  EXPECT_TRUE(reader.Open(path).IsDataLoss());

  std::string bad_magic = pristine;
  bad_magic[0] = 'X';
  write_bytes(bad_magic);
  // Magic corruption also breaks the CRC; either way it must not parse.
  EXPECT_FALSE(reader.Open(path).ok());
}

TEST(SnapshotStreamTest, AbandonedWriterLeavesNoFiles) {
  std::string path = TempPath("abandoned.ckpt");
  std::filesystem::remove(path);
  {
    SnapshotStreamWriter stream;
    ASSERT_TRUE(stream.Open(path, 2).ok());
    Writer alpha;
    alpha.WriteU32(1);
    ASSERT_TRUE(stream.AppendSection("alpha", alpha).ok());
    // Destroyed without Close(): neither the target nor the tmp may
    // exist afterwards.
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// The scale checkpoint pattern: every AnswerLog shard streams out as its
// own section and back in one at a time, and the reassembled log matches
// a monolithic round-trip exactly.
TEST(SnapshotStreamTest, ShardedAnswerLogRoundTripsSectionBySection) {
  constexpr size_t kObjects = 10000;
  constexpr size_t kAnnotators = 50;
  constexpr size_t kShardObjects = 1024;
  crowd::AnswerLog log(kObjects, kAnnotators, kShardObjects);
  Rng rng(4242);
  for (int r = 0; r < 500; ++r) {
    // Touch a few scattered ranges, leaving most shards untouched.
    int object = rng.UniformInt(static_cast<int>(kObjects / 20)) +
                 (r % 3) * 4000;
    int annotator = rng.UniformInt(static_cast<int>(kAnnotators));
    if (log.HasAnswer(object, annotator)) continue;
    log.Record(object, annotator, rng.UniformInt(3));
  }

  std::vector<size_t> live_shards;
  for (size_t s = 0; s < log.num_shards(); ++s) {
    if (!log.ShardEmpty(s)) live_shards.push_back(s);
  }
  ASSERT_GT(live_shards.size(), 1u);
  ASSERT_LT(live_shards.size(), log.num_shards());  // Some stayed empty.

  std::string path = TempPath("sharded_log.ckpt");
  {
    SnapshotStreamWriter stream;
    ASSERT_TRUE(stream.Open(path, live_shards.size()).ok());
    for (size_t s : live_shards) {
      Writer payload;
      log.SaveShardState(s, &payload);
      ASSERT_TRUE(
          stream
              .AppendSection("answers/shard-" + std::to_string(s), payload)
              .ok());
    }
    ASSERT_TRUE(stream.Close().ok());
  }

  crowd::AnswerLog restored(kObjects, kAnnotators, kShardObjects);
  {
    SnapshotStreamReader reader;
    ASSERT_TRUE(reader.Open(path).ok());
    for (size_t s : live_shards) {
      std::string buffer;
      Reader section;
      ASSERT_TRUE(reader
                      .ReadSection("answers/shard-" + std::to_string(s),
                                   &buffer, &section)
                      .ok());
      ASSERT_TRUE(restored.LoadShardState(&section).ok());
    }
  }

  EXPECT_EQ(restored.total_answers(), log.total_answers());
  for (size_t i = 0; i < kObjects; ++i) {
    const int object = static_cast<int>(i);
    EXPECT_EQ(restored.AnswerCount(object), log.AnswerCount(object));
    for (size_t j = 0; j < kAnnotators; ++j) {
      EXPECT_EQ(restored.HasAnswer(object, static_cast<int>(j)),
                log.HasAnswer(object, static_cast<int>(j)));
    }
  }
}

TEST(CheckpointDirTest, FileNamesSortByIteration) {
  EXPECT_EQ(CheckpointFileName(7), "ckpt-000000000007.ckpt");
  EXPECT_LT(CheckpointFileName(9), CheckpointFileName(10));
  EXPECT_LT(CheckpointFileName(99), CheckpointFileName(100));
}

TEST(CheckpointDirTest, RotationKeepsNewestK) {
  std::string dir = FreshDir("rotation");
  for (size_t t = 1; t <= 5; ++t) {
    SnapshotBuilder builder;
    builder.AddSection("meta")->WriteSize(t);
    ASSERT_TRUE(WriteCheckpointRotating(builder, dir, t, 2).ok());
  }
  std::string latest;
  ASSERT_TRUE(FindLatestCheckpoint(dir, &latest).ok());
  EXPECT_NE(latest.find(CheckpointFileName(5)), std::string::npos);

  // Only the newest two survive, and the oldest survivor is iteration 4.
  Snapshot snapshot;
  EXPECT_TRUE(
      Snapshot::ReadFile(dir + "/" + CheckpointFileName(3), &snapshot)
          .IsNotFound());
  EXPECT_TRUE(
      Snapshot::ReadFile(dir + "/" + CheckpointFileName(4), &snapshot)
          .ok());
}

TEST(CheckpointDirTest, KeepLastZeroKeepsEverything) {
  std::string dir = FreshDir("keep_all");
  for (size_t t = 1; t <= 4; ++t) {
    SnapshotBuilder builder;
    builder.AddSection("meta")->WriteSize(t);
    ASSERT_TRUE(WriteCheckpointRotating(builder, dir, t, 0).ok());
  }
  Snapshot snapshot;
  for (size_t t = 1; t <= 4; ++t) {
    EXPECT_TRUE(
        Snapshot::ReadFile(dir + "/" + CheckpointFileName(t), &snapshot)
            .ok())
        << "iteration " << t;
  }
}

TEST(CheckpointDirTest, FindLatestOnMissingOrEmptyDirIsNotFound) {
  std::string latest;
  EXPECT_TRUE(
      FindLatestCheckpoint(TempPath("never_created"), &latest).IsNotFound());
  EXPECT_TRUE(FindLatestCheckpoint("", &latest).IsInvalidArgument());
}

TEST(CheckpointDirTest, AtomicWriteLeavesNoTmpFile) {
  std::string path = TempPath("atomic.ckpt");
  ASSERT_TRUE(MakeTwoSectionBuilder().WriteFile(path).ok());
  Snapshot snapshot;
  EXPECT_TRUE(Snapshot::ReadFile(path, &snapshot).ok());
  EXPECT_TRUE(
      Snapshot::ReadFile(path + ".tmp", &snapshot).IsNotFound());
}

}  // namespace
}  // namespace crowdrl::io
