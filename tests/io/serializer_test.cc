#include "io/serializer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

namespace crowdrl::io {
namespace {

TEST(Crc32Test, MatchesKnownVector) {
  // The classic IEEE 802.3 check value for "123456789".
  const char data[] = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
}

TEST(Crc32Test, IncrementalEqualsOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t one_shot = Crc32(data.data(), data.size());
  uint32_t running = Crc32(data.data(), 10);
  running = Crc32(data.data() + 10, data.size() - 10, running);
  EXPECT_EQ(running, one_shot);
}

TEST(SerializerTest, ScalarRoundTrip) {
  Writer writer;
  writer.WriteU8(0xAB);
  writer.WriteU32(0xDEADBEEF);
  writer.WriteU64(0x0123456789ABCDEFull);
  writer.WriteI32(-42);
  writer.WriteI64(-1234567890123ll);
  writer.WriteSize(77);
  writer.WriteBool(true);
  writer.WriteBool(false);
  writer.WriteDouble(-0.1);

  Reader reader(writer.bytes());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  int64_t i64 = 0;
  size_t size = 0;
  bool yes = false, no = true;
  double d = 0.0;
  ASSERT_TRUE(reader.ReadU8(&u8).ok());
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  ASSERT_TRUE(reader.ReadI32(&i32).ok());
  ASSERT_TRUE(reader.ReadI64(&i64).ok());
  ASSERT_TRUE(reader.ReadSize(&size).ok());
  ASSERT_TRUE(reader.ReadBool(&yes).ok());
  ASSERT_TRUE(reader.ReadBool(&no).ok());
  ASSERT_TRUE(reader.ReadDouble(&d).ok());
  EXPECT_TRUE(reader.ExpectEnd().ok());

  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1234567890123ll);
  EXPECT_EQ(size, 77u);
  EXPECT_TRUE(yes);
  EXPECT_FALSE(no);
  EXPECT_EQ(d, -0.1);
}

TEST(SerializerTest, DoubleRoundTripIsBitExact) {
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()};
  Writer writer;
  for (double v : values) writer.WriteDouble(v);
  Reader reader(writer.bytes());
  for (double expected : values) {
    double got = 0.0;
    ASSERT_TRUE(reader.ReadDouble(&got).ok());
    if (std::isnan(expected)) {
      EXPECT_TRUE(std::isnan(got));
    } else {
      EXPECT_EQ(got, expected);
      // Distinguishes -0.0 from 0.0.
      EXPECT_EQ(std::signbit(got), std::signbit(expected));
    }
  }
}

TEST(SerializerTest, StringAndVectorRoundTrip) {
  Writer writer;
  writer.WriteString("hello \0 world");  // Truncates at NUL (string_view).
  writer.WriteString(std::string("binary\0ok", 9));
  writer.WriteDoubleVector({1.5, -2.5, 0.0});
  writer.WriteIntVector({-1, 0, 7});
  writer.WriteBoolVector({true, false, true, true});
  writer.WriteDoubleVector({});

  Reader reader(writer.bytes());
  std::string a, b;
  std::vector<double> dv, empty;
  std::vector<int> iv;
  std::vector<bool> bv;
  ASSERT_TRUE(reader.ReadString(&a).ok());
  ASSERT_TRUE(reader.ReadString(&b).ok());
  ASSERT_TRUE(reader.ReadDoubleVector(&dv).ok());
  ASSERT_TRUE(reader.ReadIntVector(&iv).ok());
  ASSERT_TRUE(reader.ReadBoolVector(&bv).ok());
  ASSERT_TRUE(reader.ReadDoubleVector(&empty).ok());
  EXPECT_TRUE(reader.ExpectEnd().ok());

  EXPECT_EQ(a, "hello ");
  EXPECT_EQ(b, std::string("binary\0ok", 9));
  EXPECT_EQ(dv, (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(iv, (std::vector<int>{-1, 0, 7}));
  EXPECT_EQ(bv, (std::vector<bool>{true, false, true, true}));
  EXPECT_TRUE(empty.empty());
}

TEST(SerializerTest, TruncatedReadsReturnDataLoss) {
  Writer writer;
  writer.WriteU64(123);
  // Drop the last byte of the encoding.
  Reader reader(std::string_view(writer.bytes()).substr(0, 7));
  uint64_t v = 0;
  EXPECT_TRUE(reader.ReadU64(&v).IsDataLoss());

  Reader empty(std::string_view{});
  uint8_t byte = 0;
  double d = 0.0;
  std::string s;
  EXPECT_TRUE(empty.ReadU8(&byte).IsDataLoss());
  EXPECT_TRUE(empty.ReadDouble(&d).IsDataLoss());
  EXPECT_TRUE(empty.ReadString(&s).IsDataLoss());
}

TEST(SerializerTest, CorruptLengthPrefixRejectedBeforeAllocation) {
  // A length prefix claiming far more bytes than remain must fail with
  // DataLoss instead of attempting a multi-exabyte allocation.
  Writer writer;
  writer.WriteU64(std::numeric_limits<uint64_t>::max());
  writer.WriteU8(1);  // One actual payload byte.
  {
    Reader reader(writer.bytes());
    std::string s;
    EXPECT_TRUE(reader.ReadString(&s).IsDataLoss());
  }
  {
    Reader reader(writer.bytes());
    std::vector<double> v;
    EXPECT_TRUE(reader.ReadDoubleVector(&v).IsDataLoss());
  }
  {
    Reader reader(writer.bytes());
    std::vector<int> v;
    EXPECT_TRUE(reader.ReadIntVector(&v).IsDataLoss());
  }
}

TEST(SerializerTest, SkipAndRemaining) {
  Writer writer;
  writer.WriteU32(1);
  writer.WriteU32(2);
  Reader reader(writer.bytes());
  EXPECT_EQ(reader.remaining(), 8u);
  ASSERT_TRUE(reader.Skip(4, "first word").ok());
  EXPECT_EQ(reader.remaining(), 4u);
  uint32_t v = 0;
  ASSERT_TRUE(reader.ReadU32(&v).ok());
  EXPECT_EQ(v, 2u);
  EXPECT_TRUE(reader.Skip(1, "past the end").IsDataLoss());
}

TEST(SerializerTest, ExpectEndCatchesTrailingGarbage) {
  Writer writer;
  writer.WriteU32(5);
  writer.WriteU8(99);  // Garbage a reader of one u32 never consumes.
  Reader reader(writer.bytes());
  uint32_t v = 0;
  ASSERT_TRUE(reader.ReadU32(&v).ok());
  EXPECT_TRUE(reader.ExpectEnd().IsDataLoss());
}

TEST(SerializerTest, LittleEndianWireFormat) {
  Writer writer;
  writer.WriteU32(0x01020304);
  const std::string& bytes = writer.bytes();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(bytes[1]), 0x03);
  EXPECT_EQ(static_cast<uint8_t>(bytes[2]), 0x02);
  EXPECT_EQ(static_cast<uint8_t>(bytes[3]), 0x01);
}

}  // namespace
}  // namespace crowdrl::io
