#include "core/framework.h"

#include <gtest/gtest.h>

namespace crowdrl::core {
namespace {

TEST(LabelStateTest, StartsUnlabelled) {
  LabelState state(3, 2);
  EXPECT_EQ(state.num_labelled(), 0u);
  EXPECT_FALSE(state.IsLabelled(0));
  EXPECT_EQ(state.label(0), -1);
  EXPECT_EQ(state.source(0), LabelSource::kNone);
  EXPECT_FALSE(state.AllLabelled());
  EXPECT_EQ(state.UnlabelledObjects(), (std::vector<int>{0, 1, 2}));
}

TEST(LabelStateTest, SetLabelTracksCountAndSource) {
  LabelState state(3, 2);
  state.SetLabel(1, 0, LabelSource::kInference);
  EXPECT_TRUE(state.IsLabelled(1));
  EXPECT_EQ(state.label(1), 0);
  EXPECT_EQ(state.source(1), LabelSource::kInference);
  EXPECT_EQ(state.num_labelled(), 1u);
  EXPECT_NEAR(state.fraction_labelled(), 1.0 / 3.0, 1e-12);
}

TEST(LabelStateTest, RelabellingDoesNotDoubleCount) {
  LabelState state(2, 2);
  state.SetLabel(0, 0, LabelSource::kInference);
  state.SetLabel(0, 1, LabelSource::kClassifier);
  EXPECT_EQ(state.num_labelled(), 1u);
  EXPECT_EQ(state.label(0), 1);
  EXPECT_EQ(state.source(0), LabelSource::kClassifier);
}

TEST(LabelStateTest, ClearLabelReopens) {
  LabelState state(2, 2);
  state.SetLabel(0, 1, LabelSource::kClassifier);
  state.ClearLabel(0);
  EXPECT_FALSE(state.IsLabelled(0));
  EXPECT_EQ(state.num_labelled(), 0u);
  EXPECT_EQ(state.source(0), LabelSource::kNone);
  state.ClearLabel(0);  // Idempotent on unlabelled objects.
  EXPECT_EQ(state.num_labelled(), 0u);
}

TEST(LabelStateTest, AllLabelledAndMask) {
  LabelState state(2, 2);
  state.SetLabel(0, 0, LabelSource::kInference);
  state.SetLabel(1, 1, LabelSource::kFallback);
  EXPECT_TRUE(state.AllLabelled());
  EXPECT_TRUE(state.labelled_mask()[0]);
  EXPECT_TRUE(state.labelled_mask()[1]);
}

TEST(LabelStateTest, ExportToResult) {
  LabelState state(2, 2);
  state.SetLabel(0, 1, LabelSource::kInference);
  state.SetLabel(1, 0, LabelSource::kClassifier);
  LabellingResult result;
  state.ExportTo(&result);
  EXPECT_EQ(result.labels, (std::vector<int>{1, 0}));
  EXPECT_EQ(result.CountBySource(LabelSource::kInference), 1u);
  EXPECT_EQ(result.CountBySource(LabelSource::kClassifier), 1u);
  EXPECT_EQ(result.CountBySource(LabelSource::kFallback), 0u);
}

TEST(LabelStateDeathTest, InvalidLabelAborts) {
  LabelState state(2, 2);
  EXPECT_DEATH(state.SetLabel(0, 2, LabelSource::kInference), "");
  EXPECT_DEATH(state.SetLabel(0, 0, LabelSource::kNone), "");
}

TEST(LabelSourceNameTest, Names) {
  EXPECT_STREQ(LabelSourceName(LabelSource::kNone), "none");
  EXPECT_STREQ(LabelSourceName(LabelSource::kInference), "inference");
  EXPECT_STREQ(LabelSourceName(LabelSource::kClassifier), "classifier");
  EXPECT_STREQ(LabelSourceName(LabelSource::kFallback), "fallback");
}

}  // namespace
}  // namespace crowdrl::core
