#include "core/framework.h"

#include <gtest/gtest.h>

namespace crowdrl::core {
namespace {

TEST(LabelStateTest, StartsUnlabelled) {
  LabelState state(3, 2);
  EXPECT_EQ(state.num_labelled(), 0u);
  EXPECT_FALSE(state.IsLabelled(0));
  EXPECT_EQ(state.label(0), -1);
  EXPECT_EQ(state.source(0), LabelSource::kNone);
  EXPECT_FALSE(state.AllLabelled());
  EXPECT_EQ(state.UnlabelledObjects(), (std::vector<int>{0, 1, 2}));
}

TEST(LabelStateTest, SetLabelTracksCountAndSource) {
  LabelState state(3, 2);
  state.SetLabel(1, 0, LabelSource::kInference);
  EXPECT_TRUE(state.IsLabelled(1));
  EXPECT_EQ(state.label(1), 0);
  EXPECT_EQ(state.source(1), LabelSource::kInference);
  EXPECT_EQ(state.num_labelled(), 1u);
  EXPECT_NEAR(state.fraction_labelled(), 1.0 / 3.0, 1e-12);
}

TEST(LabelStateTest, RelabellingDoesNotDoubleCount) {
  LabelState state(2, 2);
  state.SetLabel(0, 0, LabelSource::kInference);
  state.SetLabel(0, 1, LabelSource::kClassifier);
  EXPECT_EQ(state.num_labelled(), 1u);
  EXPECT_EQ(state.label(0), 1);
  EXPECT_EQ(state.source(0), LabelSource::kClassifier);
}

TEST(LabelStateTest, ClearLabelReopens) {
  LabelState state(2, 2);
  state.SetLabel(0, 1, LabelSource::kClassifier);
  state.ClearLabel(0);
  EXPECT_FALSE(state.IsLabelled(0));
  EXPECT_EQ(state.num_labelled(), 0u);
  EXPECT_EQ(state.source(0), LabelSource::kNone);
  state.ClearLabel(0);  // Idempotent on unlabelled objects.
  EXPECT_EQ(state.num_labelled(), 0u);
}

TEST(LabelStateTest, AllLabelledAndMask) {
  LabelState state(2, 2);
  state.SetLabel(0, 0, LabelSource::kInference);
  state.SetLabel(1, 1, LabelSource::kFallback);
  EXPECT_TRUE(state.AllLabelled());
  EXPECT_TRUE(state.labelled_mask()[0]);
  EXPECT_TRUE(state.labelled_mask()[1]);
}

TEST(LabelStateTest, ExportToResult) {
  LabelState state(2, 2);
  state.SetLabel(0, 1, LabelSource::kInference);
  state.SetLabel(1, 0, LabelSource::kClassifier);
  LabellingResult result;
  state.ExportTo(&result);
  EXPECT_EQ(result.labels, (std::vector<int>{1, 0}));
  EXPECT_EQ(result.CountBySource(LabelSource::kInference), 1u);
  EXPECT_EQ(result.CountBySource(LabelSource::kClassifier), 1u);
  EXPECT_EQ(result.CountBySource(LabelSource::kFallback), 0u);
}

TEST(LabellingResultTest, CountBySourceCountsEverySource) {
  LabellingResult result;
  result.labels = {0, 1, 0, 1, 0};
  result.sources = {LabelSource::kInference, LabelSource::kClassifier,
                    LabelSource::kInference, LabelSource::kFallback,
                    LabelSource::kNone};
  EXPECT_EQ(result.CountBySource(LabelSource::kInference), 2u);
  EXPECT_EQ(result.CountBySource(LabelSource::kClassifier), 1u);
  EXPECT_EQ(result.CountBySource(LabelSource::kFallback), 1u);
  EXPECT_EQ(result.CountBySource(LabelSource::kNone), 1u);
  // The four sources partition the objects.
  EXPECT_EQ(result.CountBySource(LabelSource::kInference) +
                result.CountBySource(LabelSource::kClassifier) +
                result.CountBySource(LabelSource::kFallback) +
                result.CountBySource(LabelSource::kNone),
            result.labels.size());
}

TEST(LabellingResultTest, CountBySourceOnEmptyResultIsZero) {
  LabellingResult result;
  EXPECT_EQ(result.CountBySource(LabelSource::kInference), 0u);
  EXPECT_EQ(result.CountBySource(LabelSource::kNone), 0u);
}

TEST(LabelStateTest, SaveLoadRoundTrip) {
  LabelState state(4, 3);
  state.SetLabel(0, 2, LabelSource::kInference);
  state.SetLabel(2, 0, LabelSource::kClassifier);
  state.SetLabel(3, 1, LabelSource::kFallback);

  io::Writer writer;
  state.SaveState(&writer);

  LabelState restored(4, 3);
  io::Reader reader(writer.bytes());
  ASSERT_TRUE(restored.LoadState(&reader).ok());
  EXPECT_TRUE(reader.ExpectEnd().ok());
  EXPECT_EQ(restored.num_labelled(), 3u);
  for (int object = 0; object < 4; ++object) {
    EXPECT_EQ(restored.label(object), state.label(object));
    EXPECT_EQ(restored.source(object), state.source(object));
    EXPECT_EQ(restored.IsLabelled(object), state.IsLabelled(object));
  }
  EXPECT_EQ(restored.UnlabelledObjects(), (std::vector<int>{1}));
}

TEST(LabelStateTest, LoadRejectsShapeMismatch) {
  LabelState state(3, 2);
  io::Writer writer;
  state.SaveState(&writer);
  {
    LabelState wrong_size(4, 2);
    io::Reader reader(writer.bytes());
    EXPECT_TRUE(wrong_size.LoadState(&reader).IsInvalidArgument());
  }
  {
    LabelState wrong_classes(3, 5);
    io::Reader reader(writer.bytes());
    EXPECT_TRUE(wrong_classes.LoadState(&reader).IsInvalidArgument());
  }
}

TEST(LabelStateTest, LoadRejectsCorruptPayload) {
  LabelState state(2, 2);
  state.SetLabel(0, 1, LabelSource::kInference);
  io::Writer writer;
  state.SaveState(&writer);

  {
    // Truncation.
    LabelState restored(2, 2);
    io::Reader reader(
        std::string_view(writer.bytes()).substr(0, writer.size() - 1));
    EXPECT_TRUE(restored.LoadState(&reader).IsDataLoss());
  }
  {
    // Unknown source enum value.
    std::string corrupt = writer.bytes();
    corrupt[corrupt.size() - 2] = 17;  // Source byte of object 0.
    LabelState restored(2, 2);
    io::Reader reader(corrupt);
    EXPECT_TRUE(restored.LoadState(&reader).IsDataLoss());
  }
}

TEST(LabelStateDeathTest, InvalidLabelAborts) {
  LabelState state(2, 2);
  EXPECT_DEATH(state.SetLabel(0, 2, LabelSource::kInference), "");
  EXPECT_DEATH(state.SetLabel(0, 0, LabelSource::kNone), "");
}

TEST(LabelSourceNameTest, Names) {
  EXPECT_STREQ(LabelSourceName(LabelSource::kNone), "none");
  EXPECT_STREQ(LabelSourceName(LabelSource::kInference), "inference");
  EXPECT_STREQ(LabelSourceName(LabelSource::kClassifier), "classifier");
  EXPECT_STREQ(LabelSourceName(LabelSource::kFallback), "fallback");
}

}  // namespace
}  // namespace crowdrl::core
