#include "core/environment.h"

#include <gtest/gtest.h>

namespace crowdrl::core {
namespace {

struct EnvFixture {
  data::Dataset dataset;
  std::vector<crowd::Annotator> pool;

  EnvFixture() {
    data::GaussianMixtureOptions options;
    options.num_objects = 20;
    options.seed = 3;
    dataset = data::MakeGaussianMixture(options);
    crowd::PoolOptions pool_options;
    pool_options.num_workers = 2;
    pool_options.num_experts = 1;
    pool = crowd::MakePool(pool_options);  // Costs 1, 1, 10.
  }
};

TEST(EnvironmentTest, RequestAnswerSpendsAndRecords) {
  EnvFixture f;
  Environment env(&f.dataset, &f.pool, 100.0, 1);
  ASSERT_TRUE(env.RequestAnswer(0, 0).ok());
  EXPECT_DOUBLE_EQ(env.budget().spent(), 1.0);
  EXPECT_TRUE(env.answers().HasAnswer(0, 0));
  EXPECT_EQ(env.human_answers(), 1u);
  ASSERT_TRUE(env.RequestAnswer(0, 2).ok());
  EXPECT_DOUBLE_EQ(env.budget().spent(), 11.0);
}

TEST(EnvironmentTest, DuplicateRequestFails) {
  EnvFixture f;
  Environment env(&f.dataset, &f.pool, 100.0, 1);
  ASSERT_TRUE(env.RequestAnswer(0, 0).ok());
  EXPECT_TRUE(env.RequestAnswer(0, 0).IsFailedPrecondition());
  EXPECT_DOUBLE_EQ(env.budget().spent(), 1.0);  // Nothing double-charged.
}

TEST(EnvironmentTest, OutOfBudgetSpendsNothing) {
  EnvFixture f;
  Environment env(&f.dataset, &f.pool, 5.0, 1);
  EXPECT_TRUE(env.RequestAnswer(0, 2).IsOutOfBudget());  // Expert costs 10.
  EXPECT_DOUBLE_EQ(env.budget().spent(), 0.0);
  EXPECT_FALSE(env.answers().HasAnswer(0, 2));
}

TEST(EnvironmentTest, InvalidIdsRejected) {
  EnvFixture f;
  Environment env(&f.dataset, &f.pool, 100.0, 1);
  EXPECT_TRUE(env.RequestAnswer(-1, 0).IsInvalidArgument());
  EXPECT_TRUE(env.RequestAnswer(100, 0).IsInvalidArgument());
  EXPECT_TRUE(env.RequestAnswer(0, 7).IsInvalidArgument());
}

TEST(EnvironmentTest, AffordabilityTracksRemainingBudget) {
  EnvFixture f;
  Environment env(&f.dataset, &f.pool, 11.0, 1);
  EXPECT_EQ(env.AffordableAnnotators(), (std::vector<bool>{1, 1, 1}));
  ASSERT_TRUE(env.RequestAnswer(0, 2).ok());  // Spend 10, remaining 1.
  std::vector<bool> affordable = env.AffordableAnnotators();
  EXPECT_TRUE(affordable[0]);
  EXPECT_FALSE(affordable[2]);
  EXPECT_TRUE(env.AnyAffordable());
  ASSERT_TRUE(env.RequestAnswer(0, 0).ok());  // Remaining 0.
  EXPECT_FALSE(env.AnyAffordable());
}

TEST(EnvironmentTest, AnsweredObjects) {
  EnvFixture f;
  Environment env(&f.dataset, &f.pool, 100.0, 1);
  ASSERT_TRUE(env.RequestAnswer(3, 0).ok());
  ASSERT_TRUE(env.RequestAnswer(7, 1).ok());
  EXPECT_EQ(env.AnsweredObjects(), (std::vector<int>{3, 7}));
}

TEST(EnvironmentTest, AnswersFollowHiddenConfusion) {
  // A perfect annotator must always return the hidden truth.
  data::GaussianMixtureOptions options;
  options.num_objects = 50;
  options.seed = 5;
  data::Dataset dataset = data::MakeGaussianMixture(options);
  std::vector<crowd::Annotator> pool;
  pool.emplace_back(0, crowd::AnnotatorType::kExpert,
                    crowd::ConfusionMatrix::Diagonal(2, 1.0), 1.0);
  Environment env(&dataset, &pool, 100.0, 1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(env.RequestAnswer(i, 0).ok());
    EXPECT_EQ(env.answers().Answer(i, 0),
              dataset.truths[static_cast<size_t>(i)]);
  }
}

TEST(EnvironmentTest, CostsAndMaxCost) {
  EnvFixture f;
  Environment env(&f.dataset, &f.pool, 100.0, 1);
  EXPECT_DOUBLE_EQ(env.max_cost(), 10.0);
  EXPECT_EQ(env.costs().size(), 3u);
  EXPECT_DOUBLE_EQ(env.costs()[0], 1.0);
}

}  // namespace
}  // namespace crowdrl::core
