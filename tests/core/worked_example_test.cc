// Encodes the paper's running example (Section II, Tables II, IV, V):
// 8 videos, 3 workers + 2 experts, worker cost 1 / expert cost 5,
// budget B = 30. These tests pin the quantities the paper states and run
// the full framework on the exact scenario.

#include <gtest/gtest.h>

#include "core/crowdrl.h"
#include "crowd/budget.h"
#include "crowd/confusion_matrix.h"

namespace crowdrl::core {
namespace {

// Table IV: worker w1's confusion matrix.
crowd::ConfusionMatrix TableIv() {
  return crowd::ConfusionMatrix(
      Matrix::FromRows({{0.60, 0.40}, {0.30, 0.70}}));
}

// Table V: expert w4's confusion matrix.
crowd::ConfusionMatrix TableV() {
  return crowd::ConfusionMatrix(
      Matrix::FromRows({{0.98, 0.02}, {0.01, 0.99}}));
}

TEST(WorkedExampleTest, TableIvQualityIsPoint65) {
  // Table II lists w1's quality as 0.65 = tr(Pi) / |C|.
  EXPECT_DOUBLE_EQ(TableIv().Quality(), 0.65);
}

TEST(WorkedExampleTest, TableVQualityIsPoint985) {
  // Table II lists w4's quality as 0.985.
  EXPECT_DOUBLE_EQ(TableV().Quality(), 0.985);
}

TEST(WorkedExampleTest, TableVEntryPi22) {
  // "The element pi_22 = 0.99 denotes w4 has a probability of 0.99 to
  // label a negative object as 'negative'."
  EXPECT_DOUBLE_EQ(TableV().At(1, 1), 0.99);
}

// Example 2's cost bookkeeping: one iteration asking w1, w3 (workers, cost
// 1 each) and w5 (expert, cost 5) costs 1 + 1 + 5 = 7.
TEST(WorkedExampleTest, ExampleTwoIterationCost) {
  crowd::Budget budget(30.0);
  ASSERT_TRUE(budget.Spend(1.0).ok());
  ASSERT_TRUE(budget.Spend(1.0).ok());
  ASSERT_TRUE(budget.Spend(5.0).ok());
  EXPECT_DOUBLE_EQ(budget.spent(), 7.0);
  EXPECT_DOUBLE_EQ(budget.remaining(), 23.0);
}

// Runs CrowdRL on the full scenario: 8 objects, the paper's annotator
// costs, budget 30. Everything must be labelled without overspending.
TEST(WorkedExampleTest, FullRunOnEightVideos) {
  data::GaussianMixtureOptions data_options;
  data_options.num_objects = 8;
  data_options.view = {4, 3.0, 1.0};  // Fluency/volume-like features.
  data_options.seed = 8;
  data::Dataset dataset = data::MakeGaussianMixture(data_options);

  // Workers w1..w3 with Table-IV-grade quality, experts w4, w5 with
  // Table-V-grade quality; costs 1 and 5 (Example 1).
  std::vector<crowd::Annotator> pool;
  for (int j = 0; j < 3; ++j) {
    pool.emplace_back(j, crowd::AnnotatorType::kWorker, TableIv(), 1.0);
  }
  for (int j = 3; j < 5; ++j) {
    pool.emplace_back(j, crowd::AnnotatorType::kExpert, TableV(), 5.0);
  }

  CrowdRlConfig config;
  config.alpha = 0.25;  // Example 2: initially label 8 * 0.25 = 2 objects.
  config.batch_objects = 1;
  config.k = 3;
  CrowdRlFramework framework(config);
  LabellingResult result;
  ASSERT_TRUE(framework.Run(dataset, pool, 30.0, 1, &result).ok());
  EXPECT_LE(result.budget_spent, 30.0 + 1e-9);
  ASSERT_EQ(result.labels.size(), 8u);
  for (int label : result.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 2);
  }
}

}  // namespace
}  // namespace crowdrl::core
