// Property test for the checkpoint & resume subsystem: a run killed at
// iteration t and resumed from its newest checkpoint must finish
// bit-identically to the uninterrupted run — same labels, budget spent,
// iteration count, human answers, per-annotator qualities, and EM
// log-likelihood. Corrupt or mismatched checkpoints must be rejected with
// a descriptive Status, never a crash.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/crowdrl.h"
#include "io/snapshot.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tests/testing/mini_json.h"

namespace crowdrl::core {
namespace {

namespace fs = std::filesystem;

constexpr double kBudget = 500.0;
constexpr uint64_t kSeed = 9;

struct Workload {
  data::Dataset dataset;
  std::vector<crowd::Annotator> pool;

  Workload() {
    data::GaussianMixtureOptions options;
    options.num_objects = 150;
    options.view = {10, 2.6, 0.5};
    options.seed = 3;
    dataset = data::MakeGaussianMixture(options);
    crowd::PoolOptions pool_options;
    pool_options.num_workers = 3;
    pool_options.num_experts = 2;
    pool_options.seed = 4;
    pool = crowd::MakePool(pool_options);
  }
};

const Workload& SharedWorkload() {
  static const Workload* workload = new Workload();
  return *workload;
}

// The uninterrupted run every interrupted+resumed run must reproduce.
const LabellingResult& Reference() {
  static const LabellingResult* reference = [] {
    auto* result = new LabellingResult();
    const Workload& w = SharedWorkload();
    CrowdRlFramework framework((CrowdRlConfig()));
    Status status = framework.Run(w.dataset, w.pool, kBudget, kSeed, result);
    CROWDRL_CHECK(status.ok()) << status.ToString();
    return result;
  }();
  return *reference;
}

std::string FreshDir(const std::string& name) {
  // Suffix with the pid: ctest runs each test of this binary as its own
  // process, and parallel siblings racing remove_all on a shared path
  // can yank a directory out from under another process's checkpoint.
  std::string dir = ::testing::TempDir() + "crowdrl_resume_test_" + name +
                    "_" + std::to_string(::getpid());
  fs::remove_all(dir);
  return dir;
}

CrowdRlConfig CheckpointingConfig(const std::string& dir,
                                  size_t halt_after) {
  CrowdRlConfig config;
  config.checkpoint_dir = dir;
  config.checkpoint_every_n_iterations = 1;
  config.halt_after_iterations = halt_after;
  return config;
}

// Runs with checkpoints + a simulated crash after `halt_after`
// iterations; returns the directory holding the checkpoints.
std::string CrashAt(size_t halt_after, const std::string& dir_name) {
  const Workload& w = SharedWorkload();
  std::string dir = FreshDir(dir_name);
  CrowdRlFramework framework(CheckpointingConfig(dir, halt_after));
  LabellingResult ignored;
  Status status = framework.Run(w.dataset, w.pool, kBudget, kSeed, &ignored);
  EXPECT_TRUE(status.IsInterrupted()) << status.ToString();
  return dir;
}

void ExpectBitIdentical(const LabellingResult& resumed) {
  const LabellingResult& reference = Reference();
  EXPECT_EQ(resumed.labels, reference.labels);
  EXPECT_EQ(resumed.sources, reference.sources);
  EXPECT_EQ(resumed.budget_spent, reference.budget_spent);
  EXPECT_EQ(resumed.iterations, reference.iterations);
  EXPECT_EQ(resumed.human_answers, reference.human_answers);
  EXPECT_EQ(resumed.final_annotator_qualities,
            reference.final_annotator_qualities);
  EXPECT_EQ(resumed.final_log_likelihood, reference.final_log_likelihood);
}

class ResumeCutTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ResumeCutTest, ResumeReproducesUninterruptedRunBitForBit) {
  const size_t cut = GetParam();
  // Make sure the cut lands strictly mid-run.
  ASSERT_GT(Reference().iterations, cut);

  const Workload& w = SharedWorkload();
  std::string dir =
      CrashAt(cut, "cut" + std::to_string(cut));

  CrowdRlConfig config = CheckpointingConfig(dir, /*halt_after=*/0);
  config.resume = true;
  CrowdRlFramework framework(config);
  LabellingResult resumed;
  ASSERT_TRUE(
      framework.Run(w.dataset, w.pool, kBudget, kSeed, &resumed).ok());
  ExpectBitIdentical(resumed);
}

INSTANTIATE_TEST_SUITE_P(Cuts, ResumeCutTest, ::testing::Values(1, 2, 4));

// The observability contract (DESIGN.md §10): a fully instrumented run —
// metrics, tracing, JSONL sink, trace export — produces bit-identical
// results to an uninstrumented one, and its per-iteration JSONL and
// Chrome trace artifacts are well-formed with the key series populated.
TEST(ObservabilityTest, InstrumentedRunIsBitIdenticalAndArtifactsParse) {
  // Force the reference to be computed with hooks off before enabling.
  const LabellingResult& reference = Reference();
  const Workload& w = SharedWorkload();
  std::string dir = FreshDir("obs");
  fs::create_directories(dir);
  std::string metrics_path = dir + "/run_metrics.jsonl";
  std::string trace_path = dir + "/trace.json";

  CrowdRlConfig config;
  config.obs.enabled = true;
  config.obs.tracing = true;
  config.obs.metrics_jsonl_path = metrics_path;
  config.obs.trace_json_path = trace_path;
  CrowdRlFramework framework(config);
  LabellingResult observed;
  Status status = framework.Run(w.dataset, w.pool, kBudget, kSeed, &observed);
  obs::SetTracing(false);
  obs::SetEnabled(false);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ExpectBitIdentical(observed);

  // One parseable record per labelling iteration, ending at the final
  // iteration count, with the acceptance series present: framework
  // counters, the ScoreCache hit-rate, and the ThreadPool queue depth.
  std::ifstream in(metrics_path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t records = 0;
  crowdrl::testing::JsonValue last;
  while (std::getline(in, line)) {
    ++records;
    crowdrl::testing::JsonValue record;
    ASSERT_TRUE(crowdrl::testing::MiniJsonParser::Parse(line, &record))
        << "record " << records << ": " << line;
    EXPECT_EQ(record["iteration"].number, static_cast<double>(records));
    last = std::move(record);
  }
  ASSERT_GT(records, 0u);
  // A record is written at the end of every completed iteration; the very
  // last counted iteration may end the loop early (nothing left to
  // assign) without completing, so allow one less record than the total.
  EXPECT_GE(records + 1, reference.iterations);
  EXPECT_LE(records, reference.iterations);
  EXPECT_GE(last["counters"]["crowdrl.framework.iterations"].number,
            static_cast<double>(records));
  EXPECT_GT(last["counters"]["crowdrl.framework.objects_selected"].number,
            0.0);
  EXPECT_GT(
      last["counters"]["crowdrl.framework.assignments_executed"].number,
      0.0);
  EXPECT_GT(last["counters"]["crowdrl.framework.em_iterations"].number,
            0.0);
  EXPECT_GT(last["counters"]["crowdrl.scorecache.syncs"].number, 0.0);
  EXPECT_TRUE(last["gauges"].Has("crowdrl.scorecache.hit_rate"));
  EXPECT_TRUE(last["gauges"].Has("crowdrl.threadpool.queue_depth"));
  EXPECT_TRUE(last["gauges"].Has("crowdrl.framework.log_likelihood"));
  EXPECT_TRUE(last["histograms"].Has("crowdrl.threadpool.task_run_us"));

  // The exported trace parses and carries the run-loop spans.
  std::ifstream trace_in(trace_path);
  ASSERT_TRUE(trace_in.good());
  std::ostringstream trace_text;
  trace_text << trace_in.rdbuf();
  crowdrl::testing::JsonValue trace;
  ASSERT_TRUE(
      crowdrl::testing::MiniJsonParser::Parse(trace_text.str(), &trace));
  ASSERT_TRUE(trace.Has("traceEvents"));
  ASSERT_GT(trace["traceEvents"].array.size(), 0u);
  std::set<std::string> span_names;
  for (const auto& event : trace["traceEvents"].array) {
    span_names.insert(event["name"].str);
  }
  EXPECT_TRUE(span_names.count("framework.iteration"));
  EXPECT_TRUE(span_names.count("framework.inference"));
  EXPECT_TRUE(span_names.count("joint.e_step"));
  EXPECT_TRUE(span_names.count("scorecache.sync"));
  obs::TraceRecorder::Get().Clear();
}

TEST(CheckpointResumeTest, ExplicitSaveAndLoadCheckpoint) {
  const Workload& w = SharedWorkload();
  std::string dir = FreshDir("explicit");
  std::string path = dir + "/manual.ckpt";
  {
    // Pause (no periodic checkpoints) and save explicitly.
    CrowdRlConfig config;
    config.halt_after_iterations = 2;
    CrowdRlFramework framework(config);
    LabellingResult ignored;
    ASSERT_TRUE(framework.Run(w.dataset, w.pool, kBudget, kSeed, &ignored)
                    .IsInterrupted());
    ASSERT_TRUE(framework.SaveCheckpoint(path).ok());
  }
  CrowdRlFramework framework((CrowdRlConfig()));
  ASSERT_TRUE(framework.LoadCheckpoint(path).ok());
  LabellingResult resumed;
  ASSERT_TRUE(
      framework.Run(w.dataset, w.pool, kBudget, kSeed, &resumed).ok());
  ExpectBitIdentical(resumed);
}

TEST(CheckpointResumeTest, SaveCheckpointWithoutPausedRunFails) {
  CrowdRlFramework framework((CrowdRlConfig()));
  EXPECT_TRUE(framework
                  .SaveCheckpoint(FreshDir("no_run") + "/x.ckpt")
                  .IsFailedPrecondition());
}

TEST(CheckpointResumeTest, ResumeWithEmptyDirRunsFresh) {
  // resume=true with no checkpoint present is not an error — a first run
  // under a restart-on-failure supervisor starts from scratch.
  const Workload& w = SharedWorkload();
  CrowdRlConfig config = CheckpointingConfig(FreshDir("empty"), 0);
  config.checkpoint_every_n_iterations = 0;
  config.resume = true;
  CrowdRlFramework framework(config);
  LabellingResult result;
  ASSERT_TRUE(
      framework.Run(w.dataset, w.pool, kBudget, kSeed, &result).ok());
  ExpectBitIdentical(result);
}

TEST(CheckpointResumeTest, RotationKeepsLastK) {
  std::string dir = CrashAt(5, "rotation");
  size_t count = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".ckpt") ++count;
  }
  // CrowdRlConfig::checkpoint_keep_last defaults to 3.
  EXPECT_EQ(count, 3u);
}

TEST(CheckpointResumeTest, MismatchedRunIsRejected) {
  const Workload& w = SharedWorkload();
  std::string dir = CrashAt(2, "mismatch");
  CrowdRlConfig config = CheckpointingConfig(dir, 0);
  config.resume = true;
  {
    // Same workload, different seed: the checkpoint belongs to another
    // random stream and silently diverging would be worse than failing.
    CrowdRlFramework framework(config);
    LabellingResult result;
    EXPECT_TRUE(
        framework.Run(w.dataset, w.pool, kBudget, kSeed + 1, &result)
            .IsInvalidArgument());
  }
  {
    // Different budget.
    CrowdRlFramework framework(config);
    LabellingResult result;
    EXPECT_TRUE(
        framework.Run(w.dataset, w.pool, kBudget + 1.0, kSeed, &result)
            .IsInvalidArgument());
  }
}

class CorruptionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    std::string dir = CrashAt(2, "corruption");
    std::string path;
    ASSERT_TRUE(io::FindLatestCheckpoint(dir, &path).ok());
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes_ = new std::string((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
    scratch_ = new std::string(FreshDir("corruption_scratch"));
    fs::create_directories(*scratch_);
  }

  static Status LoadBytes(const std::string& bytes,
                          const std::string& name) {
    std::string path = *scratch_ + "/" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    CrowdRlFramework framework((CrowdRlConfig()));
    return framework.LoadCheckpoint(path);
  }

  static std::string* bytes_;
  static std::string* scratch_;
};

std::string* CorruptionTest::bytes_ = nullptr;
std::string* CorruptionTest::scratch_ = nullptr;

TEST_F(CorruptionTest, PristineCheckpointLoads) {
  EXPECT_TRUE(LoadBytes(*bytes_, "pristine.ckpt").ok());
}

TEST_F(CorruptionTest, TruncatedCheckpointIsDataLoss) {
  EXPECT_TRUE(LoadBytes(bytes_->substr(0, bytes_->size() / 2),
                        "truncated.ckpt")
                  .IsDataLoss());
}

TEST_F(CorruptionTest, BitFlipIsDataLoss) {
  std::string corrupt = *bytes_;
  corrupt[corrupt.size() / 2] ^= 0x01;
  EXPECT_TRUE(LoadBytes(corrupt, "bitflip.ckpt").IsDataLoss());
}

TEST_F(CorruptionTest, ForeignFileIsInvalidArgument) {
  std::string corrupt = *bytes_;
  corrupt[0] = 'Z';  // Break the magic.
  EXPECT_TRUE(LoadBytes(corrupt, "foreign.ckpt").IsInvalidArgument());
}

}  // namespace
}  // namespace crowdrl::core
