#include "core/enrichment.h"

#include <gtest/gtest.h>

#include "classifier/classifier.h"
#include "core/reward.h"

namespace crowdrl::core {
namespace {

// Classifier stub returning canned probabilities per object row.
class FakeClassifier : public classifier::Classifier {
 public:
  explicit FakeClassifier(Matrix probs) : probs_(std::move(probs)) {}

  Status Train(const Matrix&, const Matrix&,
               const std::vector<double>&) override {
    return Status::Ok();
  }

  std::vector<double> PredictProbs(
      const std::vector<double>& features) const override {
    // Feature 0 carries the object id.
    return probs_.RowVector(static_cast<size_t>(features[0]));
  }

  int num_classes() const override {
    return static_cast<int>(probs_.cols());
  }
  size_t feature_dim() const override { return 1; }
  bool is_trained() const override { return trained_; }
  void set_trained(bool trained) { trained_ = trained; }

  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<FakeClassifier>(*this);
  }

 private:
  Matrix probs_;
  bool trained_ = true;
};

Matrix IdFeatures(size_t n) {
  Matrix features(n, 1);
  for (size_t i = 0; i < n; ++i) features.At(i, 0) = static_cast<double>(i);
  return features;
}

TEST(EnrichmentTest, LabelsConfidentSkipsAmbiguous) {
  FakeClassifier phi(Matrix::FromRows(
      {{0.95, 0.05}, {0.55, 0.45}, {0.05, 0.95}, {0.7, 0.3}}));
  LabelState state(4, 2);
  state.SetLabel(3, 0, LabelSource::kInference);  // Pre-labelled.
  EnrichmentOptions options;
  options.epsilon = 0.5;
  options.min_labelled = 1;
  options.min_labelled_fraction = 0.0;
  size_t enriched = EnrichLabelledSet(phi, IdFeatures(4), options, &state);
  EXPECT_EQ(enriched, 2u);  // Objects 0 and 2; 1 too ambiguous; 3 taken.
  EXPECT_EQ(state.label(0), 0);
  EXPECT_EQ(state.source(0), LabelSource::kClassifier);
  EXPECT_EQ(state.label(2), 1);
  EXPECT_FALSE(state.IsLabelled(1));
  EXPECT_EQ(state.source(3), LabelSource::kInference);  // Untouched.
}

TEST(EnrichmentTest, ExactThresholdStaysUnlabelled) {
  // Gap == epsilon must NOT label (Algorithm 1: <= epsilon is ambiguous).
  FakeClassifier phi(Matrix::FromRows({{0.75, 0.25}}));
  LabelState state(1, 2);
  EnrichmentOptions options;
  options.epsilon = 0.5;
  options.min_labelled = 0;
  options.min_labelled_fraction = 0.0;
  EXPECT_EQ(EnrichLabelledSet(phi, IdFeatures(1), options, &state), 0u);
}

TEST(EnrichmentTest, UntrainedClassifierIsNoop) {
  FakeClassifier phi(Matrix::FromRows({{1.0, 0.0}}));
  phi.set_trained(false);
  LabelState state(1, 2);
  EnrichmentOptions options;
  options.min_labelled = 0;
  options.min_labelled_fraction = 0.0;
  EXPECT_EQ(EnrichLabelledSet(phi, IdFeatures(1), options, &state), 0u);
}

TEST(EnrichmentTest, MinLabelledGateBlocks) {
  FakeClassifier phi(Matrix::FromRows({{1.0, 0.0}, {1.0, 0.0}}));
  LabelState state(2, 2);
  EnrichmentOptions options;
  options.epsilon = 0.5;
  options.min_labelled = 1;
  options.min_labelled_fraction = 0.0;
  EXPECT_EQ(EnrichLabelledSet(phi, IdFeatures(2), options, &state), 0u);
  state.SetLabel(0, 0, LabelSource::kInference);
  EXPECT_EQ(EnrichLabelledSet(phi, IdFeatures(2), options, &state), 1u);
}

TEST(EnrichmentTest, FractionGateScalesWithWorkload) {
  FakeClassifier phi(Matrix(10, 2, 0.0));
  LabelState state(10, 2);
  state.SetLabel(0, 0, LabelSource::kInference);
  EnrichmentOptions options;
  options.min_labelled = 1;
  options.min_labelled_fraction = 0.5;  // Needs 5 labelled, has 1.
  EXPECT_EQ(EnrichLabelledSet(phi, IdFeatures(10), options, &state), 0u);
}

TEST(RewardTest, SharedEnrichmentReward) {
  RewardOptions options;
  options.lambda = 2.0;
  EXPECT_DOUBLE_EQ(SharedEnrichmentReward(options, 5, 10), 1.0);
  EXPECT_DOUBLE_EQ(SharedEnrichmentReward(options, 0, 10), 0.0);
  EXPECT_DOUBLE_EQ(SharedEnrichmentReward(options, 0, 0), 0.0);
}

TEST(RewardTest, PairReward) {
  RewardOptions options;
  options.mu = 1.0;
  options.eta = -0.5;
  EXPECT_DOUBLE_EQ(PairReward(options, true, 10.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(PairReward(options, false, 1.0, 10.0), -0.05);
  EXPECT_DOUBLE_EQ(PairReward(options, true, 0.0, 10.0), 1.0);
}

}  // namespace
}  // namespace crowdrl::core
