#include "core/crowdrl.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace crowdrl::core {
namespace {

struct RunFixture {
  data::Dataset dataset;
  std::vector<crowd::Annotator> pool;

  explicit RunFixture(size_t objects = 150, uint64_t seed = 3) {
    data::GaussianMixtureOptions options;
    options.num_objects = objects;
    options.view = {10, 2.6, 0.5};
    options.seed = seed;
    dataset = data::MakeGaussianMixture(options);
    crowd::PoolOptions pool_options;
    pool_options.num_workers = 3;
    pool_options.num_experts = 2;
    pool_options.seed = seed + 1;
    pool = crowd::MakePool(pool_options);
  }
};

CrowdRlConfig FastConfig() {
  CrowdRlConfig config;
  config.max_iterations = 200;
  return config;
}

TEST(CrowdRlTest, CompletesAndRespectsInvariants) {
  RunFixture f;
  CrowdRlFramework framework(FastConfig());
  LabellingResult result;
  ASSERT_TRUE(framework.Run(f.dataset, f.pool, 600.0, 1, &result).ok());
  ASSERT_EQ(result.labels.size(), f.dataset.num_objects());
  for (size_t i = 0; i < result.labels.size(); ++i) {
    EXPECT_GE(result.labels[i], 0);
    EXPECT_LT(result.labels[i], 2);
    EXPECT_NE(result.sources[i], LabelSource::kNone);
  }
  EXPECT_LE(result.budget_spent, 600.0 + 1e-9);
  EXPECT_GT(result.human_answers, 0u);
  EXPECT_EQ(result.final_annotator_qualities.size(), f.pool.size());
}

TEST(CrowdRlTest, BeatsMajorityClassBaseline) {
  RunFixture f(300, 3);
  CrowdRlFramework framework(FastConfig());
  LabellingResult result;
  ASSERT_TRUE(framework.Run(f.dataset, f.pool, 1200.0, 2, &result).ok());
  eval::Metrics m =
      eval::ComputeMetrics(f.dataset.truths, result.labels, 2);
  EXPECT_GT(m.accuracy, 0.72);
}

TEST(CrowdRlTest, DeterministicForFixedSeed) {
  RunFixture f;
  LabellingResult a, b;
  {
    CrowdRlFramework framework(FastConfig());
    ASSERT_TRUE(framework.Run(f.dataset, f.pool, 500.0, 7, &a).ok());
  }
  {
    CrowdRlFramework framework(FastConfig());
    ASSERT_TRUE(framework.Run(f.dataset, f.pool, 500.0, 7, &b).ok());
  }
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.budget_spent, b.budget_spent);
  EXPECT_EQ(a.human_answers, b.human_answers);
}

TEST(CrowdRlTest, SeedsChangeTheRun) {
  RunFixture f;
  CrowdRlFramework framework(FastConfig());
  LabellingResult a, b;
  ASSERT_TRUE(framework.Run(f.dataset, f.pool, 500.0, 7, &a).ok());
  ASSERT_TRUE(framework.Run(f.dataset, f.pool, 500.0, 8, &b).ok());
  EXPECT_NE(a.labels, b.labels);
}

TEST(CrowdRlTest, ZeroBudgetStillLabelsEverything) {
  RunFixture f;
  CrowdRlFramework framework(FastConfig());
  LabellingResult result;
  ASSERT_TRUE(framework.Run(f.dataset, f.pool, 0.0, 1, &result).ok());
  EXPECT_DOUBLE_EQ(result.budget_spent, 0.0);
  EXPECT_EQ(result.human_answers, 0u);
  EXPECT_EQ(result.CountBySource(LabelSource::kFallback),
            f.dataset.num_objects());
}

TEST(CrowdRlTest, TinyBudgetFallsBackForUndecidedObjects) {
  // A budget that affords only the bootstrap answers: the run must still
  // finalize every object, using kFallback for whatever inference and the
  // classifier never decided, and every decided label must come from
  // exactly one of the three real sources.
  RunFixture f;
  CrowdRlFramework framework(FastConfig());
  LabellingResult result;
  ASSERT_TRUE(framework.Run(f.dataset, f.pool, 30.0, 1, &result).ok());
  EXPECT_EQ(result.CountBySource(LabelSource::kNone), 0u);
  EXPECT_GT(result.CountBySource(LabelSource::kFallback), 0u);
  EXPECT_EQ(result.CountBySource(LabelSource::kInference) +
                result.CountBySource(LabelSource::kClassifier) +
                result.CountBySource(LabelSource::kFallback),
            f.dataset.num_objects());
  // Fallback labels are still valid class ids.
  for (size_t i = 0; i < result.labels.size(); ++i) {
    EXPECT_GE(result.labels[i], 0);
    EXPECT_LT(result.labels[i], 2);
  }
}

TEST(CrowdRlTest, InvalidInputsRejected) {
  RunFixture f;
  CrowdRlFramework framework;
  LabellingResult result;
  EXPECT_TRUE(framework.Run(f.dataset, {}, 100.0, 1, &result)
                  .IsInvalidArgument());
  EXPECT_TRUE(framework.Run(f.dataset, f.pool, -5.0, 1, &result)
                  .IsInvalidArgument());
  CrowdRlConfig bad;
  bad.alpha = 0.0;
  CrowdRlFramework bad_framework(bad);
  EXPECT_TRUE(bad_framework.Run(f.dataset, f.pool, 100.0, 1, &result)
                  .IsInvalidArgument());
}

class AblationTest : public ::testing::TestWithParam<int> {};

TEST_P(AblationTest, AblatedConfigsCompleteWithinBudget) {
  RunFixture f;
  CrowdRlConfig config = FastConfig();
  switch (GetParam()) {
    case 1:
      config.random_task_selection = true;
      break;
    case 2:
      config.random_task_assignment = true;
      break;
    case 3:
      config.use_pm_inference = true;
      break;
    case 4:
      config.random_task_selection = true;
      config.random_task_assignment = true;
      break;
  }
  CrowdRlFramework framework(config);
  LabellingResult result;
  ASSERT_TRUE(framework.Run(f.dataset, f.pool, 500.0, 5, &result).ok());
  EXPECT_LE(result.budget_spent, 500.0 + 1e-9);
  EXPECT_EQ(result.labels.size(), f.dataset.num_objects());
}

INSTANTIATE_TEST_SUITE_P(Modes, AblationTest, ::testing::Values(1, 2, 3, 4));

TEST(AblationTest, NamesReflectSwitches) {
  CrowdRlConfig config;
  config.use_pm_inference = true;
  CrowdRlFramework m3(config);
  EXPECT_STREQ(m3.name(), "CrowdRL-M3");
  EXPECT_STREQ(CrowdRlFramework().name(), "CrowdRL");
}

TEST(PretrainTest, ChainsParametersAcrossTasks) {
  RunFixture f(80, 11);
  RunFixture g(80, 12);
  std::vector<PretrainTask> tasks = {{&f.dataset, &f.pool, 300.0},
                                     {&g.dataset, &g.pool, 300.0}};
  std::vector<double> params =
      PretrainQNetwork(CrowdRlConfig(), tasks, 100);
  EXPECT_FALSE(params.empty());

  // A warm-started run must accept the parameters and complete.
  CrowdRlConfig config = FastConfig();
  config.pretrained_q_params = params;
  CrowdRlFramework framework(config);
  LabellingResult result;
  ASSERT_TRUE(framework.Run(f.dataset, f.pool, 300.0, 2, &result).ok());
  EXPECT_EQ(framework.last_q_parameters().size(), params.size());
}

TEST(CrowdRlTest, RefinementSpendsLeftoverBudget) {
  RunFixture f;
  CrowdRlConfig with = FastConfig();
  with.refine_with_leftover_budget = true;
  CrowdRlConfig without = FastConfig();
  without.refine_with_leftover_budget = false;
  LabellingResult r_with, r_without;
  CrowdRlFramework fw_with(with), fw_without(without);
  ASSERT_TRUE(fw_with.Run(f.dataset, f.pool, 900.0, 4, &r_with).ok());
  ASSERT_TRUE(
      fw_without.Run(f.dataset, f.pool, 900.0, 4, &r_without).ok());
  EXPECT_GE(r_with.budget_spent + 1e-9, r_without.budget_spent);
}

}  // namespace
}  // namespace crowdrl::core
