#include <gtest/gtest.h>

#include "baselines/ablations.h"
#include "baselines/dalc.h"
#include "baselines/dlta.h"
#include "baselines/hybrid.h"
#include "baselines/idle.h"
#include "baselines/oba.h"
#include "eval/metrics.h"

namespace crowdrl::baselines {
namespace {

struct Workload {
  data::Dataset dataset;
  std::vector<crowd::Annotator> pool;

  Workload() {
    data::GaussianMixtureOptions options;
    options.num_objects = 150;
    options.view = {10, 2.6, 0.5};
    options.seed = 17;
    dataset = data::MakeGaussianMixture(options);
    crowd::PoolOptions pool_options;
    pool_options.num_workers = 3;
    pool_options.num_experts = 2;
    pool_options.seed = 18;
    pool = crowd::MakePool(pool_options);
  }
};

class BaselineContractTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<core::LabellingFramework> Make(const std::string& name) {
    if (name == "DLTA") return std::make_unique<Dlta>();
    if (name == "OBA") return std::make_unique<Oba>();
    if (name == "IDLE") return std::make_unique<Idle>();
    if (name == "DALC") return std::make_unique<Dalc>();
    if (name == "Hybrid") return std::make_unique<Hybrid>();
    if (name == "M1") return MakeM1();
    if (name == "M2") return MakeM2();
    if (name == "M3") return MakeM3();
    ADD_FAILURE() << "unknown baseline " << name;
    return nullptr;
  }
};

// Every framework must satisfy the same contract: complete labelling,
// budget respected, better than coin-flipping on a learnable workload.
TEST_P(BaselineContractTest, CompleteWithinBudgetAndInformative) {
  Workload w;
  auto framework = Make(GetParam());
  core::LabellingResult result;
  ASSERT_TRUE(framework->Run(w.dataset, w.pool, 600.0, 3, &result).ok())
      << framework->name();
  ASSERT_EQ(result.labels.size(), w.dataset.num_objects());
  EXPECT_LE(result.budget_spent, 600.0 + 1e-9) << framework->name();
  for (int label : result.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 2);
  }
  eval::Metrics m = eval::ComputeMetrics(w.dataset.truths, result.labels, 2);
  EXPECT_GT(m.accuracy, 0.55) << framework->name();
}

TEST_P(BaselineContractTest, DeterministicForFixedSeed) {
  Workload w;
  auto framework = Make(GetParam());
  core::LabellingResult a, b;
  ASSERT_TRUE(framework->Run(w.dataset, w.pool, 400.0, 9, &a).ok());
  auto fresh = Make(GetParam());
  ASSERT_TRUE(fresh->Run(w.dataset, w.pool, 400.0, 9, &b).ok());
  EXPECT_EQ(a.labels, b.labels) << framework->name();
}

TEST_P(BaselineContractTest, RejectsEmptyPool) {
  Workload w;
  auto framework = Make(GetParam());
  core::LabellingResult result;
  EXPECT_TRUE(framework->Run(w.dataset, {}, 100.0, 1, &result)
                  .IsInvalidArgument());
}

INSTANTIATE_TEST_SUITE_P(All, BaselineContractTest,
                         ::testing::Values("DLTA", "OBA", "IDLE", "DALC",
                                           "Hybrid", "M1", "M2", "M3"));

TEST(BaselineNamesTest, AsReported) {
  EXPECT_STREQ(Dlta().name(), "DLTA");
  EXPECT_STREQ(Oba().name(), "OBA");
  EXPECT_STREQ(Idle().name(), "IDLE");
  EXPECT_STREQ(Dalc().name(), "DALC");
  EXPECT_STREQ(Hybrid().name(), "Hybrid");
  EXPECT_STREQ(MakeM1()->name(), "CrowdRL-M1");
  EXPECT_STREQ(MakeM2()->name(), "CrowdRL-M2");
  EXPECT_STREQ(MakeM3()->name(), "CrowdRL-M3");
}

TEST(DltaTest, SpendsTheBudgetOnUncertainObjects) {
  Workload w;
  Dlta dlta;
  core::LabellingResult result;
  ASSERT_TRUE(dlta.Run(w.dataset, w.pool, 600.0, 5, &result).ok());
  // DLTA is a pure-crowd method: no classifier-labelled objects.
  EXPECT_EQ(result.CountBySource(core::LabelSource::kClassifier), 0u);
  EXPECT_GT(result.budget_spent, 500.0);
}

TEST(ObaTest, TrustsSingleAnswers) {
  Workload w;
  Oba oba;
  core::LabellingResult result;
  ASSERT_TRUE(oba.Run(w.dataset, w.pool, 600.0, 5, &result).ok());
  // OBA asks exactly one annotator per human-labelled object.
  EXPECT_EQ(result.human_answers,
            result.CountBySource(core::LabelSource::kInference));
}

TEST(HybridTest, UsesBothHumansAndClassifier) {
  Workload w;
  Hybrid hybrid;
  core::LabellingResult result;
  ASSERT_TRUE(hybrid.Run(w.dataset, w.pool, 400.0, 5, &result).ok());
  EXPECT_GT(result.human_answers, 0u);
}

}  // namespace
}  // namespace crowdrl::baselines
