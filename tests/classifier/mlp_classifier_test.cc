#include "classifier/mlp_classifier.h"

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "math/vector_ops.h"

namespace crowdrl::classifier {
namespace {

// Well-separated two-class workload plus one-hot labels.
struct TrainingSet {
  Matrix x;
  Matrix y;
  std::vector<int> truths;
};

TrainingSet MakeSeparable(size_t n, uint64_t seed) {
  data::GaussianMixtureOptions options;
  options.num_objects = n;
  options.view = {8, 6.0, 1.0};  // Very separable.
  options.seed = seed;
  data::Dataset d = data::MakeGaussianMixture(options);
  TrainingSet set;
  set.x = d.features;
  set.y = Matrix(n, 2);
  for (size_t i = 0; i < n; ++i) {
    set.y.At(i, static_cast<size_t>(d.truths[i])) = 1.0;
  }
  set.truths = d.truths;
  return set;
}

double Accuracy(const Classifier& c, const TrainingSet& set) {
  size_t correct = 0;
  for (size_t i = 0; i < set.x.rows(); ++i) {
    if (static_cast<int>(Argmax(c.PredictProbs(set.x.RowVector(i)))) ==
        set.truths[i]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(set.x.rows());
}

TEST(MlpClassifierTest, UntrainedPredictsUniform) {
  MlpClassifier c(4, 3);
  EXPECT_FALSE(c.is_trained());
  std::vector<double> probs = c.PredictProbs({0.0, 0.0, 0.0, 0.0});
  for (double p : probs) EXPECT_DOUBLE_EQ(p, 1.0 / 3.0);
}

TEST(MlpClassifierTest, LearnsSeparableData) {
  TrainingSet set = MakeSeparable(200, 3);
  MlpClassifier c(8, 2);
  ASSERT_TRUE(c.Train(set.x, set.y, {}).ok());
  EXPECT_TRUE(c.is_trained());
  EXPECT_GT(Accuracy(c, set), 0.95);
}

TEST(MlpClassifierTest, ProbabilitiesSumToOne) {
  TrainingSet set = MakeSeparable(100, 4);
  MlpClassifier c(8, 2);
  ASSERT_TRUE(c.Train(set.x, set.y, {}).ok());
  for (size_t i = 0; i < 10; ++i) {
    std::vector<double> p = c.PredictProbs(set.x.RowVector(i));
    double sum = 0.0;
    for (double v : p) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(MlpClassifierTest, BatchMatchesSinglePrediction) {
  TrainingSet set = MakeSeparable(50, 5);
  MlpClassifier c(8, 2);
  ASSERT_TRUE(c.Train(set.x, set.y, {}).ok());
  Matrix batch = c.PredictProbsBatch(set.x);
  for (size_t i = 0; i < 10; ++i) {
    std::vector<double> single = c.PredictProbs(set.x.RowVector(i));
    for (size_t k = 0; k < 2; ++k) {
      EXPECT_NEAR(batch.At(i, k), single[k], 1e-12);
    }
  }
}

TEST(MlpClassifierTest, SoftLabelTrainingWorks) {
  TrainingSet set = MakeSeparable(150, 6);
  // Soften the labels: 0.9 / 0.1 instead of one-hot.
  Matrix soft = set.y;
  for (size_t i = 0; i < soft.rows(); ++i) {
    for (size_t k = 0; k < 2; ++k) {
      soft.At(i, k) = soft.At(i, k) * 0.8 + 0.1;
    }
  }
  MlpClassifier c(8, 2);
  ASSERT_TRUE(c.Train(set.x, soft, {}).ok());
  EXPECT_GT(Accuracy(c, set), 0.9);
}

TEST(MlpClassifierTest, SampleWeightsResolveConflictingLabels) {
  // The same input appears with both labels; the heavier label must win.
  Matrix x(20, 2);
  Matrix y(20, 2);
  std::vector<double> weights(20);
  for (size_t i = 0; i < 20; ++i) {
    x.At(i, 0) = 1.0;
    x.At(i, 1) = -1.0;
    bool label_one = i % 2 == 0;
    y.At(i, label_one ? 1 : 0) = 1.0;
    weights[i] = label_one ? 10.0 : 0.1;
  }
  MlpClassifier c(2, 2);
  ASSERT_TRUE(c.Train(x, y, weights).ok());
  EXPECT_EQ(Argmax(c.PredictProbs({1.0, -1.0})), 1u);
}

TEST(MlpClassifierTest, ErrorStatuses) {
  MlpClassifier c(4, 2);
  Matrix empty;
  EXPECT_TRUE(c.Train(empty, empty, {}).IsInvalidArgument());
  Matrix x(3, 4);
  Matrix wrong_labels(3, 3);
  EXPECT_TRUE(c.Train(x, wrong_labels, {}).IsInvalidArgument());
  Matrix y(3, 2);
  EXPECT_TRUE(c.Train(x, y, {1.0}).IsInvalidArgument());
  Matrix bad_x(3, 5);
  EXPECT_TRUE(c.Train(bad_x, y, {}).IsInvalidArgument());
}

TEST(MlpClassifierTest, CloneIsIndependent) {
  TrainingSet set = MakeSeparable(80, 8);
  MlpClassifier c(8, 2);
  ASSERT_TRUE(c.Train(set.x, set.y, {}).ok());
  std::unique_ptr<Classifier> clone = c.Clone();
  EXPECT_TRUE(clone->is_trained());
  std::vector<double> before = clone->PredictProbs(set.x.RowVector(0));
  // Retrain the original on flipped labels; the clone must not move.
  Matrix flipped(set.y.rows(), 2);
  for (size_t i = 0; i < set.y.rows(); ++i) {
    flipped.At(i, 0) = set.y.At(i, 1);
    flipped.At(i, 1) = set.y.At(i, 0);
  }
  ASSERT_TRUE(c.Train(set.x, flipped, {}).ok());
  std::vector<double> after = clone->PredictProbs(set.x.RowVector(0));
  EXPECT_EQ(before, after);
}

TEST(MlpClassifierTest, WarmStartContinuesFromWeights) {
  TrainingSet set = MakeSeparable(150, 9);
  MlpClassifierOptions options;
  options.warm_start = true;
  options.epochs = 3;
  MlpClassifier c(8, 2, options);
  ASSERT_TRUE(c.Train(set.x, set.y, {}).ok());
  double acc1 = Accuracy(c, set);
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(c.Train(set.x, set.y, {}).ok());
  }
  EXPECT_GE(Accuracy(c, set), acc1 - 0.02);  // Refinement never regresses.
}

TEST(LogisticClassifierTest, LearnsLinearlySeparableData) {
  TrainingSet set = MakeSeparable(200, 10);
  LogisticClassifier c(8, 2);
  ASSERT_TRUE(c.Train(set.x, set.y, {}).ok());
  EXPECT_GT(Accuracy(c, set), 0.95);
}

}  // namespace
}  // namespace crowdrl::classifier
