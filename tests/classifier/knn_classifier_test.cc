#include "classifier/knn_classifier.h"

#include <gtest/gtest.h>

#include "math/vector_ops.h"

namespace crowdrl::classifier {
namespace {

TEST(KnnClassifierTest, UntrainedPredictsUniform) {
  KnnClassifier c(2, 2);
  EXPECT_FALSE(c.is_trained());
  std::vector<double> p = c.PredictProbs({0.0, 0.0});
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
}

TEST(KnnClassifierTest, NearestNeighbourWins) {
  KnnClassifier c(1, 2, {1});
  Matrix x = Matrix::FromRows({{0.0}, {10.0}});
  Matrix y = Matrix::FromRows({{1.0, 0.0}, {0.0, 1.0}});
  ASSERT_TRUE(c.Train(x, y, {}).ok());
  EXPECT_EQ(Argmax(c.PredictProbs({1.0})), 0u);
  EXPECT_EQ(Argmax(c.PredictProbs({9.0})), 1u);
}

TEST(KnnClassifierTest, VoteFractionsAreProbabilities) {
  KnnClassifier c(1, 2, {3});
  Matrix x = Matrix::FromRows({{0.0}, {1.0}, {2.0}, {10.0}});
  Matrix y = Matrix::FromRows(
      {{1.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {0.0, 1.0}});
  ASSERT_TRUE(c.Train(x, y, {}).ok());
  // Neighbours of 0.5: {0, 1, 2} -> two class-0 votes, one class-1.
  std::vector<double> p = c.PredictProbs({0.5});
  EXPECT_NEAR(p[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(p[1], 1.0 / 3.0, 1e-12);
}

TEST(KnnClassifierTest, KLargerThanTrainingSet) {
  KnnClassifier c(1, 2, {10});
  Matrix x = Matrix::FromRows({{0.0}, {1.0}});
  Matrix y = Matrix::FromRows({{1.0, 0.0}, {0.0, 1.0}});
  ASSERT_TRUE(c.Train(x, y, {}).ok());
  std::vector<double> p = c.PredictProbs({0.5});
  EXPECT_DOUBLE_EQ(p[0], 0.5);
}

TEST(KnnClassifierTest, SoftLabelsReducedToArgmax) {
  KnnClassifier c(1, 2, {1});
  Matrix x = Matrix::FromRows({{0.0}});
  Matrix y = Matrix::FromRows({{0.4, 0.6}});
  ASSERT_TRUE(c.Train(x, y, {}).ok());
  EXPECT_EQ(Argmax(c.PredictProbs({0.0})), 1u);
}

TEST(KnnClassifierTest, ErrorStatuses) {
  KnnClassifier c(2, 2);
  Matrix empty;
  EXPECT_TRUE(c.Train(empty, empty, {}).IsInvalidArgument());
  Matrix x(2, 3);
  Matrix y(2, 2);
  EXPECT_TRUE(c.Train(x, y, {}).IsInvalidArgument());
}

TEST(KnnClassifierTest, CloneIsIndependent) {
  KnnClassifier c(1, 2, {1});
  Matrix x = Matrix::FromRows({{0.0}});
  Matrix y = Matrix::FromRows({{1.0, 0.0}});
  ASSERT_TRUE(c.Train(x, y, {}).ok());
  std::unique_ptr<Classifier> clone = c.Clone();
  Matrix x2 = Matrix::FromRows({{0.0}});
  Matrix y2 = Matrix::FromRows({{0.0, 1.0}});
  ASSERT_TRUE(c.Train(x2, y2, {}).ok());
  EXPECT_EQ(Argmax(clone->PredictProbs({0.0})), 0u);
  EXPECT_EQ(Argmax(c.PredictProbs({0.0})), 1u);
}

}  // namespace
}  // namespace crowdrl::classifier
