#include "util/string_util.h"

#include <gtest/gtest.h>

namespace crowdrl {
namespace {

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
}

TEST(StringPrintfTest, LongOutput) {
  std::string big(500, 'z');
  EXPECT_EQ(StringPrintf("%s", big.c_str()), big);
}

}  // namespace
}  // namespace crowdrl
