#include "util/logging.h"

#include <gtest/gtest.h>

namespace crowdrl {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrip) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST(LoggingTest, MessagesAboveThresholdReachStderr) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  CROWDRL_LOG(Warning) << "visible-" << 42;
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("visible-42"), std::string::npos);
  EXPECT_NE(out.find("WARN"), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST(LoggingTest, MessagesBelowThresholdAreDropped) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  CROWDRL_LOG(Info) << "hidden";
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
}

TEST(LoggingDeathTest, CheckFailureAbortsWithMessage) {
  EXPECT_DEATH(CROWDRL_CHECK(1 == 2) << "doom", "Check failed: 1 == 2");
}

TEST(LoggingTest, CheckPassesSilently) {
  ::testing::internal::CaptureStderr();
  CROWDRL_CHECK(true) << "never built";
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST(LoggingDeathTest, DcheckActiveMatchesBuildMode) {
#ifdef NDEBUG
  CROWDRL_DCHECK(false) << "compiled out in release";
  SUCCEED();
#else
  EXPECT_DEATH(CROWDRL_DCHECK(false), "Check failed");
#endif
}

}  // namespace
}  // namespace crowdrl
