#include "util/logging.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace crowdrl {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrip) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST(LoggingTest, MessagesAboveThresholdReachStderr) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  CROWDRL_LOG(Warning) << "visible-" << 42;
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("visible-42"), std::string::npos);
  EXPECT_NE(out.find("WARN"), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST(LoggingTest, MessagesBelowThresholdAreDropped) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  CROWDRL_LOG(Info) << "hidden";
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
}

// The level lives in a std::atomic<LogLevel>: concurrent SetLogLevel /
// GetLogLevel / threshold checks are data-race-free (TSan-clean) and a
// reader only ever observes a value some writer actually stored.
TEST(LoggingTest, LevelIsSafeToReadAndWriteConcurrently) {
  LogLevelGuard guard;
  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  constexpr int kOpsPerThread = 20000;
  const LogLevel levels[] = {LogLevel::kDebug, LogLevel::kInfo,
                             LogLevel::kWarning, LogLevel::kError};
  std::atomic<bool> bad{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&levels, w] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        SetLogLevel(levels[(i + w) % 4]);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&bad] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        LogLevel level = GetLogLevel();
        if (level < LogLevel::kDebug || level > LogLevel::kError) {
          bad.store(true, std::memory_order_relaxed);
        }
        // The threshold check CROWDRL_LOG performs, racing the writers.
        if (LogLevel::kDebug < level) continue;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(bad.load());
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST(LoggingDeathTest, CheckFailureAbortsWithMessage) {
  EXPECT_DEATH(CROWDRL_CHECK(1 == 2) << "doom", "Check failed: 1 == 2");
}

TEST(LoggingTest, CheckPassesSilently) {
  ::testing::internal::CaptureStderr();
  CROWDRL_CHECK(true) << "never built";
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST(LoggingDeathTest, DcheckActiveMatchesBuildMode) {
#ifdef NDEBUG
  CROWDRL_DCHECK(false) << "compiled out in release";
  SUCCEED();
#else
  EXPECT_DEATH(CROWDRL_DCHECK(false), "Check failed");
#endif
}

}  // namespace
}  // namespace crowdrl
