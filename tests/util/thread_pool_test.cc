#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace crowdrl {
namespace {

TEST(ThreadPoolTest, SingleThreadSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool clamped(0);
  EXPECT_EQ(clamped.num_threads(), 1);
}

TEST(ThreadPoolTest, ReportsRequestedConcurrency) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  // Chunks write disjoint slots, so no synchronization is needed and any
  // double-visit or gap shows up as a wrong count.
  std::vector<int> visits(1000, 0);
  pool.ParallelFor(0, visits.size(), 7, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++visits[i];
  });
  for (size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SubrangeOnlyTouchesItsIndices) {
  ThreadPool pool(3);
  std::vector<int> visits(100, 0);
  pool.ParallelFor(25, 75, 4, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++visits[i];
  });
  for (size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i], (i >= 25 && i < 75) ? 1 : 0) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, RangeWithinOneGrainRunsInlineAsOneChunk) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::thread::id chunk_thread;
  pool.ParallelFor(0, 10, 64, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    chunk_thread = std::this_thread::get_id();
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(chunk_thread, std::this_thread::get_id());
}

TEST(ThreadPoolTest, ZeroGrainIsTreatedAsOne) {
  ThreadPool pool(2);
  std::vector<int> visits(20, 0);
  pool.ParallelFor(0, visits.size(), 0, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++visits[i];
  });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(ThreadPoolTest, PerChunkReductionMatchesSerialSum) {
  // The determinism pattern the hot paths rely on: store per-element terms
  // (here per-index products), reduce serially afterwards.
  std::vector<double> terms(5000);
  ThreadPool pool(4);
  pool.ParallelFor(0, terms.size(), 33, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      terms[i] = 0.5 * static_cast<double>(i) + 1.0;
    }
  });
  double parallel_sum = 0.0;
  for (double t : terms) parallel_sum += t;

  double serial_sum = 0.0;
  for (size_t i = 0; i < terms.size(); ++i) {
    serial_sum += 0.5 * static_cast<double>(i) + 1.0;
  }
  EXPECT_EQ(parallel_sum, serial_sum);  // Bitwise, not approximate.
}

TEST(ThreadPoolTest, NestedParallelForOnSamePoolRunsSeriallyWithoutDeadlock) {
  // Regression: a nested ParallelFor on the same pool used to overwrite
  // job_/generation_ mid-dispatch and deadlock. It must now run the nested
  // range inline on the calling lane, covering every index exactly once.
  ThreadPool pool(4);
  constexpr size_t kOuter = 64;
  constexpr size_t kInner = 32;
  std::vector<std::atomic<int>> visits(kOuter * kInner);
  for (auto& v : visits) v.store(0);
  pool.ParallelFor(0, kOuter, 4, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pool.ParallelFor(0, kInner, 4, [&](size_t jb, size_t je) {
        // The nested call must stay on this lane: the outer workers are
        // all busy, so handing it to them could only hang.
        for (size_t j = jb; j < je; ++j) ++visits[i * kInner + j];
      });
    }
  });
  for (size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPoolTest, NestedCallOnDifferentPoolStillDispatches) {
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::vector<std::atomic<int>> visits(200);
  for (auto& v : visits) v.store(0);
  outer.ParallelFor(0, 2, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      inner.ParallelFor(i * 100, (i + 1) * 100, 5, [&](size_t jb, size_t je) {
        for (size_t j = jb; j < je; ++j) ++visits[j];
      });
    }
  });
  for (size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPoolTest, DispatchAfterNestedInlineRunStillWorks) {
  // The in-pool flag must be restored when an outer dispatch finishes so
  // later top-level ParallelFor calls go wide again.
  ThreadPool pool(3);
  pool.ParallelFor(0, 8, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pool.ParallelFor(0, 4, 1, [&](size_t, size_t) {});
    }
  });
  std::atomic<size_t> count{0};
  pool.ParallelFor(0, 100, 3, [&](size_t begin, size_t end) {
    count += end - begin;
  });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPoolTest, BackToBackDispatchesReuseWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> count{0};
    pool.ParallelFor(0, 100, 3, [&](size_t begin, size_t end) {
      count += end - begin;
    });
    ASSERT_EQ(count.load(), 100u) << "round " << round;
  }
}

}  // namespace
}  // namespace crowdrl
