#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace crowdrl {
namespace {

TEST(ThreadPoolTest, SingleThreadSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool clamped(0);
  EXPECT_EQ(clamped.num_threads(), 1);
}

TEST(ThreadPoolTest, ReportsRequestedConcurrency) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  // Chunks write disjoint slots, so no synchronization is needed and any
  // double-visit or gap shows up as a wrong count.
  std::vector<int> visits(1000, 0);
  pool.ParallelFor(0, visits.size(), 7, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++visits[i];
  });
  for (size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SubrangeOnlyTouchesItsIndices) {
  ThreadPool pool(3);
  std::vector<int> visits(100, 0);
  pool.ParallelFor(25, 75, 4, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++visits[i];
  });
  for (size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i], (i >= 25 && i < 75) ? 1 : 0) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, RangeWithinOneGrainRunsInlineAsOneChunk) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::thread::id chunk_thread;
  pool.ParallelFor(0, 10, 64, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    chunk_thread = std::this_thread::get_id();
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(chunk_thread, std::this_thread::get_id());
}

TEST(ThreadPoolTest, ZeroGrainIsTreatedAsOne) {
  ThreadPool pool(2);
  std::vector<int> visits(20, 0);
  pool.ParallelFor(0, visits.size(), 0, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++visits[i];
  });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(ThreadPoolTest, PerChunkReductionMatchesSerialSum) {
  // The determinism pattern the hot paths rely on: store per-element terms
  // (here per-index products), reduce serially afterwards.
  std::vector<double> terms(5000);
  ThreadPool pool(4);
  pool.ParallelFor(0, terms.size(), 33, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      terms[i] = 0.5 * static_cast<double>(i) + 1.0;
    }
  });
  double parallel_sum = 0.0;
  for (double t : terms) parallel_sum += t;

  double serial_sum = 0.0;
  for (size_t i = 0; i < terms.size(); ++i) {
    serial_sum += 0.5 * static_cast<double>(i) + 1.0;
  }
  EXPECT_EQ(parallel_sum, serial_sum);  // Bitwise, not approximate.
}

TEST(ThreadPoolTest, BackToBackDispatchesReuseWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> count{0};
    pool.ParallelFor(0, 100, 3, [&](size_t begin, size_t end) {
      count += end - begin;
    });
    ASSERT_EQ(count.load(), 100u) << "round " << round;
  }
}

}  // namespace
}  // namespace crowdrl
