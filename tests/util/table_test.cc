#include "util/table.h"

#include <sstream>

#include <gtest/gtest.h>

namespace crowdrl {
namespace {

TEST(TableTest, PrintsHeaderAndRows) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "22"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, DoubleRowsAreFormatted) {
  Table t({"m", "a", "b"});
  t.AddRow("row", {0.123456, 2.0}, 3);
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("0.123"), std::string::npos);
  EXPECT_NE(os.str().find("2.000"), std::string::npos);
}

TEST(TableTest, CsvQuotesSpecialCells) {
  Table t({"a", "b"});
  t.AddRow({"has,comma", "has\"quote"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableTest, CsvPlainCellsUnquoted) {
  Table t({"a"});
  t.AddRow({"plain"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a\nplain\n");
}

TEST(TableDeathTest, MismatchedRowAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "row has");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(-0.5, 4), "-0.5000");
}

}  // namespace
}  // namespace crowdrl
