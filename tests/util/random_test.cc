#include "util/random.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace crowdrl {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    int x = rng.UniformInt(5);
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 5);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int heads = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Bernoulli(0.3)) ++heads;
  }
  double rate = static_cast<double>(heads) / kTrials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, BernoulliDegenerateProbabilities) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, CategoricalMatchesWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int kTrials = 30000;
  for (int i = 0; i < kTrials; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kTrials), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(kTrials), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(kTrials), 0.6, 0.02);
}

TEST(RngTest, CategoricalSkipsZeroWeights) {
  Rng rng(23);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(29);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) {
    double x = rng.Gaussian(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / kTrials;
  double var = sum_sq / kTrials - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(RngTest, GaussianZeroStddevIsMean) {
  Rng rng(31);
  EXPECT_DOUBLE_EQ(rng.Gaussian(5.0, 0.0), 5.0);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(37);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.Uniform() == child2.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(41);
  Rng b(41);
  Rng ca = a.Fork(9);
  Rng cb = b.Fork(9);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(ca.Uniform(), cb.Uniform());
  }
}

class SampleWithoutReplacementTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SampleWithoutReplacementTest, DistinctAndInRange) {
  auto [n, k] = GetParam();
  Rng rng(43);
  std::vector<int> sample = rng.SampleWithoutReplacement(n, k);
  ASSERT_EQ(sample.size(), static_cast<size_t>(k));
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), sample.size());
  for (int x : sample) {
    EXPECT_GE(x, 0);
    EXPECT_LT(x, n);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SampleWithoutReplacementTest,
                         ::testing::Values(std::pair{1, 1}, std::pair{5, 0},
                                           std::pair{10, 10},
                                           std::pair{100, 7},
                                           std::pair{1000, 500}));

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(47);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
  EXPECT_NE(shuffled, v);  // Astronomically unlikely to be identity.
}

}  // namespace
}  // namespace crowdrl
