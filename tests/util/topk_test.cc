#include "util/topk.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace crowdrl {
namespace {

TEST(TopKTest, KeepsLargestScores) {
  TopK<int> top(3);
  for (int i = 0; i < 10; ++i) top.Push(static_cast<double>(i), i);
  auto out = top.TakeSortedDescending();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].second, 9);
  EXPECT_EQ(out[1].second, 8);
  EXPECT_EQ(out[2].second, 7);
}

TEST(TopKTest, FewerItemsThanK) {
  TopK<int> top(5);
  top.Push(1.0, 1);
  top.Push(2.0, 2);
  EXPECT_EQ(top.size(), 2u);
  EXPECT_DOUBLE_EQ(top.ScoreSum(), 3.0);
}

TEST(TopKTest, ScoreSumTracksRetained) {
  TopK<int> top(2);
  top.Push(1.0, 1);
  top.Push(5.0, 5);
  top.Push(3.0, 3);
  EXPECT_DOUBLE_EQ(top.ScoreSum(), 8.0);  // 5 + 3.
  EXPECT_DOUBLE_EQ(top.MinScore(), 3.0);
}

TEST(TopKTest, NegativeScores) {
  TopK<int> top(2);
  top.Push(-5.0, 1);
  top.Push(-1.0, 2);
  top.Push(-3.0, 3);
  auto out = top.TakeSortedDescending();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].second, 2);
  EXPECT_EQ(out[1].second, 3);
}

TEST(TopKTest, AllNegativeScoreSumAndMin) {
  // Q-values below zero are routine early in training; the selector must
  // not treat 0 as an implicit floor when every score is negative.
  TopK<int> top(3);
  top.Push(-8.0, 1);
  top.Push(-2.0, 2);
  top.Push(-4.0, 3);
  top.Push(-16.0, 4);
  EXPECT_EQ(top.size(), 3u);
  EXPECT_DOUBLE_EQ(top.ScoreSum(), -14.0);  // -2 + -4 + -8.
  EXPECT_DOUBLE_EQ(top.MinScore(), -8.0);
  auto out = top.TakeSortedDescending();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].second, 2);
  EXPECT_EQ(out[1].second, 3);
  EXPECT_EQ(out[2].second, 1);
}

TEST(TopKTest, AllNegativeFewerThanK) {
  TopK<int> top(5);
  top.Push(-1.5, 7);
  top.Push(-0.5, 8);
  EXPECT_EQ(top.size(), 2u);
  EXPECT_DOUBLE_EQ(top.ScoreSum(), -2.0);
  auto out = top.TakeSortedDescending();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].second, 8);
  EXPECT_EQ(out[1].second, 7);
}

TEST(TopKTest, TakeEmptiesTheSelector) {
  TopK<int> top(2);
  top.Push(1.0, 1);
  (void)top.TakeSortedDescending();
  EXPECT_TRUE(top.empty());
  EXPECT_DOUBLE_EQ(top.ScoreSum(), 0.0);
}

class TopKPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TopKPropertyTest, MatchesSortOnRandomInput) {
  int k = GetParam();
  Rng rng(101 + static_cast<uint64_t>(k));
  std::vector<double> scores(200);
  for (double& s : scores) s = rng.Uniform(-10.0, 10.0);

  TopK<size_t> top(static_cast<size_t>(k));
  for (size_t i = 0; i < scores.size(); ++i) top.Push(scores[i], i);
  auto got = top.TakeSortedDescending();

  std::vector<double> sorted = scores;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  ASSERT_EQ(got.size(), std::min<size_t>(k, scores.size()));
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i].first, sorted[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKPropertyTest,
                         ::testing::Values(1, 2, 3, 10, 50, 200, 500));

}  // namespace
}  // namespace crowdrl
