#include "util/status.h"

#include <gtest/gtest.h>

namespace crowdrl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("bad").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("gone").IsNotFound());
  EXPECT_TRUE(Status::OutOfBudget("broke").IsOutOfBudget());
  EXPECT_TRUE(Status::FailedPrecondition("early").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("bug").IsInternal());
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, NonOkStatusesAreNotOk) {
  EXPECT_FALSE(Status::InvalidArgument("x").ok());
  EXPECT_FALSE(Status::OutOfBudget("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad arg").ToString(),
            "INVALID_ARGUMENT: bad arg");
  EXPECT_EQ(Status::OutOfBudget("").ToString(), "OUT_OF_BUDGET");
}

TEST(StatusTest, CopyPreservesState) {
  Status a = Status::NotFound("missing");
  Status b = a;
  EXPECT_TRUE(b.IsNotFound());
  EXPECT_EQ(b.message(), "missing");
}

Status FailsThrough() {
  CROWDRL_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::Ok();
}

Status Passes() {
  CROWDRL_RETURN_IF_ERROR(Status::Ok());
  return Status::InvalidArgument("reached end");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsThrough().IsInternal());
  EXPECT_TRUE(Passes().IsInvalidArgument());
}

}  // namespace
}  // namespace crowdrl
