// Bit-identity tests pinning Mlp::Forward/Infer/Backward to the pre-kernel
// (seed) implementation, which is embedded verbatim below. The GEMM layer is
// only allowed to reorganize work, never arithmetic, so every activation,
// weight gradient, bias gradient, and input gradient must be byte-equal —
// this is what keeps checkpoint-resume trajectories bit-exact across the
// kernel rewrite.
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "math/matrix.h"
#include "nn/mlp.h"
#include "tests/testing/reference_gemm.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace crowdrl::nn {
namespace {

using ::crowdrl::testing::BitEqual;
using ::crowdrl::testing::ReferenceMatMul;
using ::crowdrl::testing::ReferenceTransposed;

// --- Seed MLP, transcribed from the pre-kernel nn/mlp.cc ------------------

struct SeedLayer {
  Matrix weight;  // out x in
  std::vector<double> bias;
  Matrix weight_grad;
  std::vector<double> bias_grad;
  Activation activation;
  Matrix input;
  Matrix output;
};

void SeedApplyActivation(Activation act, Matrix* values) {
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (double& v : values->data()) v = v > 0.0 ? v : 0.0;
      return;
    case Activation::kSigmoid:
      for (double& v : values->data()) v = 1.0 / (1.0 + std::exp(-v));
      return;
    case Activation::kTanh:
      for (double& v : values->data()) v = std::tanh(v);
      return;
  }
}

void SeedApplyActivationGrad(Activation act, const Matrix& post,
                             Matrix* grad) {
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (size_t i = 0; i < grad->data().size(); ++i) {
        if (post.data()[i] <= 0.0) grad->data()[i] = 0.0;
      }
      return;
    case Activation::kSigmoid:
      for (size_t i = 0; i < grad->data().size(); ++i) {
        double y = post.data()[i];
        grad->data()[i] *= y * (1.0 - y);
      }
      return;
    case Activation::kTanh:
      for (size_t i = 0; i < grad->data().size(); ++i) {
        double y = post.data()[i];
        grad->data()[i] *= 1.0 - y * y;
      }
      return;
  }
}

struct SeedMlp {
  std::vector<SeedLayer> layers;

  // Clones parameters from an Mlp built with the same architecture, using
  // the documented FlatParameters layout (per layer: row-major weight,
  // then bias).
  SeedMlp(const Mlp& net, const std::vector<size_t>& sizes,
          const std::vector<Activation>& acts) {
    std::vector<double> flat = net.FlatParameters();
    size_t offset = 0;
    layers.resize(sizes.size() - 1);
    for (size_t l = 0; l < layers.size(); ++l) {
      SeedLayer& layer = layers[l];
      size_t in = sizes[l];
      size_t out = sizes[l + 1];
      layer.weight = Matrix(out, in);
      for (double& w : layer.weight.data()) w = flat[offset++];
      layer.bias.assign(flat.begin() + offset, flat.begin() + offset + out);
      offset += out;
      layer.weight_grad = Matrix(out, in);
      layer.bias_grad.assign(out, 0.0);
      layer.activation = acts[l];
    }
  }

  Matrix Forward(const Matrix& batch) {
    Matrix current = batch;
    for (SeedLayer& layer : layers) {
      layer.input = current;
      Matrix pre = ReferenceMatMul(current, ReferenceTransposed(layer.weight));
      for (size_t r = 0; r < pre.rows(); ++r) {
        double* row = pre.Row(r);
        for (size_t c = 0; c < pre.cols(); ++c) row[c] += layer.bias[c];
      }
      SeedApplyActivation(layer.activation, &pre);
      layer.output = pre;
      current = std::move(pre);
    }
    return current;
  }

  Matrix Backward(const Matrix& grad_output) {
    Matrix grad = grad_output;
    for (size_t l = layers.size(); l > 0; --l) {
      SeedLayer& layer = layers[l - 1];
      SeedApplyActivationGrad(layer.activation, layer.output, &grad);
      Matrix dw = ReferenceMatMul(ReferenceTransposed(grad), layer.input);
      layer.weight_grad.Add(dw);
      for (size_t r = 0; r < grad.rows(); ++r) {
        const double* row = grad.Row(r);
        for (size_t c = 0; c < grad.cols(); ++c) layer.bias_grad[c] += row[c];
      }
      grad = ReferenceMatMul(grad, layer.weight);
    }
    return grad;
  }
};

// --------------------------------------------------------------------------

bool BitEqualVec(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

struct Arch {
  std::vector<size_t> sizes;
  std::vector<Activation> acts;
};

std::vector<Arch> TestArchitectures() {
  return {
      // Every activation in one net, widths off the 4-row unroll.
      {{5, 7, 6, 3},
       {Activation::kRelu, Activation::kTanh, Activation::kSigmoid}},
      // The paper's shape family: ReLU hidden, identity logits. Widths
      // past the unroll and grain boundaries matter for the kernels.
      {{90, 67, 1}, {Activation::kRelu, Activation::kIdentity}},
      // Single layer.
      {{4, 2}, {Activation::kIdentity}},
  };
}

TEST(MlpGoldenTest, ForwardBackwardBitIdenticalToSeedImplementation) {
  Rng data_rng(101);
  for (const Arch& arch : TestArchitectures()) {
    Rng rng(7);
    Mlp net(arch.sizes, arch.acts, &rng);
    SeedMlp seed(net, arch.sizes, arch.acts);
    // Batch sizes crossing the 4-row unroll and the 64-row chunk grain.
    for (size_t batch_rows : {size_t{1}, size_t{3}, size_t{65}}) {
      Matrix x(batch_rows, arch.sizes.front());
      x.FillUniform(&data_rng, -2.0, 2.0);
      Matrix got = net.Forward(x);
      Matrix want = seed.Forward(x);
      ASSERT_TRUE(BitEqual(got, want)) << "forward batch=" << batch_rows;

      Matrix grad(batch_rows, arch.sizes.back());
      grad.FillUniform(&data_rng, -1.0, 1.0);
      Matrix input_grad;
      net.Backward(grad, &input_grad);
      Matrix want_input_grad = seed.Backward(grad);
      ASSERT_TRUE(BitEqual(input_grad, want_input_grad))
          << "input grad batch=" << batch_rows;

      std::vector<ParamView> views = net.ParamViews();
      for (size_t l = 0; l < seed.layers.size(); ++l) {
        const SeedLayer& sl = seed.layers[l];
        EXPECT_EQ(std::memcmp(views[2 * l].grad, sl.weight_grad.data().data(),
                              sl.weight_grad.size() * sizeof(double)),
                  0)
            << "weight grad layer " << l << " batch=" << batch_rows;
        EXPECT_TRUE(BitEqualVec(
            std::vector<double>(views[2 * l + 1].grad,
                                views[2 * l + 1].grad + sl.bias_grad.size()),
            sl.bias_grad))
            << "bias grad layer " << l << " batch=" << batch_rows;
      }
      // Gradients accumulate across calls in both implementations; clear
      // between batch sizes so each comparison stands alone.
      net.ZeroGrad();
      for (SeedLayer& sl : seed.layers) {
        sl.weight_grad.Fill(0.0);
        for (double& g : sl.bias_grad) g = 0.0;
      }
    }
  }
}

TEST(MlpGoldenTest, InferBitIdenticalToForwardAndSeed) {
  Rng rng(8);
  Arch arch = TestArchitectures()[0];
  Mlp net(arch.sizes, arch.acts, &rng);
  SeedMlp seed(net, arch.sizes, arch.acts);
  Rng data_rng(9);
  Matrix x(33, arch.sizes.front());
  x.FillUniform(&data_rng, -1.0, 1.0);
  Matrix want = seed.Forward(x);
  EXPECT_TRUE(BitEqual(net.Infer(x), want));
  EXPECT_TRUE(BitEqual(net.Forward(x), want));
  // Single-sample overload agrees row-wise.
  std::vector<double> row0 = net.Infer(x.RowVector(0));
  EXPECT_TRUE(BitEqualVec(row0, want.RowVector(0)));
}

TEST(MlpGoldenTest, ThreadedForwardBackwardBitIdenticalToSerial) {
  Rng rng(10);
  Arch arch = TestArchitectures()[1];
  Mlp serial_net(arch.sizes, arch.acts, &rng);
  Mlp threaded_net = serial_net;
  ThreadPool pool(3);
  Rng data_rng(11);
  Matrix x(130, arch.sizes.front());
  x.FillUniform(&data_rng, -1.0, 1.0);
  Matrix grad(130, arch.sizes.back());
  grad.FillUniform(&data_rng, -1.0, 1.0);

  Matrix serial_out = serial_net.Forward(x);
  Matrix threaded_out = threaded_net.Forward(x, &pool);
  EXPECT_TRUE(BitEqual(serial_out, threaded_out));

  Matrix serial_dx, threaded_dx;
  serial_net.Backward(grad, &serial_dx);
  threaded_net.Backward(grad, &threaded_dx, &pool);
  EXPECT_TRUE(BitEqual(serial_dx, threaded_dx));
  EXPECT_EQ(serial_net.FlatParameters(), threaded_net.FlatParameters());

  std::vector<ParamView> sv = serial_net.ParamViews();
  std::vector<ParamView> tv = threaded_net.ParamViews();
  for (size_t i = 0; i < sv.size(); ++i) {
    EXPECT_EQ(
        std::memcmp(sv[i].grad, tv[i].grad, sv[i].size * sizeof(double)), 0)
        << "grad block " << i;
  }
}

TEST(MlpGoldenTest, RepeatedBackwardAccumulatesLikeSeed) {
  Rng rng(12);
  Arch arch = TestArchitectures()[0];
  Mlp net(arch.sizes, arch.acts, &rng);
  SeedMlp seed(net, arch.sizes, arch.acts);
  Rng data_rng(13);
  Matrix x(6, arch.sizes.front());
  x.FillUniform(&data_rng, -1.0, 1.0);
  Matrix grad(6, arch.sizes.back());
  grad.FillUniform(&data_rng, -1.0, 1.0);
  net.Forward(x);
  seed.Forward(x);
  net.Backward(grad);
  net.Backward(grad);
  seed.Backward(grad);
  seed.Backward(grad);
  std::vector<ParamView> views = net.ParamViews();
  for (size_t l = 0; l < seed.layers.size(); ++l) {
    EXPECT_EQ(std::memcmp(views[2 * l].grad,
                          seed.layers[l].weight_grad.data().data(),
                          seed.layers[l].weight_grad.size() * sizeof(double)),
              0)
        << "layer " << l;
  }
}

}  // namespace
}  // namespace crowdrl::nn
