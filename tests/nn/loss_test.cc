#include "nn/loss.h"

#include <cmath>

#include <gtest/gtest.h>

#include "math/vector_ops.h"
#include "util/random.h"

namespace crowdrl::nn {
namespace {

TEST(MseLossTest, KnownValue) {
  Matrix pred = Matrix::FromRows({{1.0, 2.0}});
  Matrix target = Matrix::FromRows({{0.0, 0.0}});
  Matrix grad;
  double loss = MseLoss(pred, target, &grad);
  EXPECT_DOUBLE_EQ(loss, 2.5);  // (1 + 4) / 2.
  EXPECT_DOUBLE_EQ(grad.At(0, 0), 1.0);   // 2 * 1 / 2.
  EXPECT_DOUBLE_EQ(grad.At(0, 1), 2.0);   // 2 * 2 / 2.
}

TEST(MseLossTest, ZeroAtPerfectPrediction) {
  Matrix pred = Matrix::FromRows({{3.0}});
  Matrix grad;
  EXPECT_DOUBLE_EQ(MseLoss(pred, pred, &grad), 0.0);
  EXPECT_DOUBLE_EQ(grad.At(0, 0), 0.0);
}

TEST(WeightedMseLossTest, WeightsScaleRows) {
  Matrix pred = Matrix::FromRows({{1.0}, {1.0}});
  Matrix target = Matrix::FromRows({{0.0}, {0.0}});
  Matrix grad;
  double loss = WeightedMseLoss(pred, target, {2.0, 0.0}, &grad);
  EXPECT_DOUBLE_EQ(loss, 1.0);  // (2*1 + 0*1) / 2.
  EXPECT_DOUBLE_EQ(grad.At(1, 0), 0.0);
}

TEST(SoftmaxCrossEntropyTest, UniformLogitsAgainstOneHot) {
  Matrix logits = Matrix::FromRows({{0.0, 0.0}});
  Matrix target = Matrix::FromRows({{1.0, 0.0}});
  Matrix grad;
  double loss = SoftmaxCrossEntropyLoss(logits, target, &grad);
  EXPECT_NEAR(loss, std::log(2.0), 1e-12);
  EXPECT_NEAR(grad.At(0, 0), -0.5, 1e-12);
  EXPECT_NEAR(grad.At(0, 1), 0.5, 1e-12);
}

TEST(SoftmaxCrossEntropyTest, SoftTargetsSupported) {
  Matrix logits = Matrix::FromRows({{1.0, -1.0}});
  Matrix target = Matrix::FromRows({{0.7, 0.3}});
  Matrix grad;
  double loss = SoftmaxCrossEntropyLoss(logits, target, &grad);
  std::vector<double> p = Softmax({1.0, -1.0});
  double expected = -0.7 * std::log(p[0]) - 0.3 * std::log(p[1]);
  EXPECT_NEAR(loss, expected, 1e-12);
  EXPECT_NEAR(grad.At(0, 0), p[0] - 0.7, 1e-12);
}

class CrossEntropyGradientTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossEntropyGradientTest, GradMatchesFiniteDifference) {
  Rng rng(GetParam());
  Matrix logits(3, 4);
  Matrix target(3, 4);
  logits.FillGaussian(&rng, 0.0, 1.0);
  for (size_t r = 0; r < 3; ++r) {
    std::vector<double> t(4);
    for (double& x : t) x = rng.Uniform();
    NormalizeL1(&t);
    target.SetRow(r, t);
  }
  Matrix grad;
  SoftmaxCrossEntropyLoss(logits, target, &grad);
  const double kEps = 1e-6;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      Matrix plus = logits;
      Matrix minus = logits;
      plus.At(r, c) += kEps;
      minus.At(r, c) -= kEps;
      Matrix unused;
      double numeric = (SoftmaxCrossEntropyLoss(plus, target, &unused) -
                        SoftmaxCrossEntropyLoss(minus, target, &unused)) /
                       (2.0 * kEps);
      EXPECT_NEAR(grad.At(r, c), numeric, 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossEntropyGradientTest,
                         ::testing::Values(3, 5, 8));

TEST(MaskedMseLossTest, OnlyUnmaskedEntriesContribute) {
  Matrix pred = Matrix::FromRows({{1.0, 5.0}});
  Matrix target = Matrix::FromRows({{0.0, 0.0}});
  Matrix mask = Matrix::FromRows({{1.0, 0.0}});
  Matrix grad;
  double loss = MaskedMseLoss(pred, target, mask, &grad);
  EXPECT_DOUBLE_EQ(loss, 1.0);
  EXPECT_DOUBLE_EQ(grad.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(grad.At(0, 0), 2.0);
}

TEST(MaskedMseLossTest, AllMaskedIsZero) {
  Matrix pred = Matrix::FromRows({{1.0}});
  Matrix target = Matrix::FromRows({{0.0}});
  Matrix mask = Matrix::FromRows({{0.0}});
  Matrix grad;
  EXPECT_DOUBLE_EQ(MaskedMseLoss(pred, target, mask, &grad), 0.0);
}

}  // namespace
}  // namespace crowdrl::nn
