#include "nn/mlp.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "util/random.h"

namespace crowdrl::nn {
namespace {

Mlp SmallNet(uint64_t seed) {
  Rng rng(seed);
  return Mlp({3, 4, 2},
             {Activation::kTanh, Activation::kIdentity}, &rng);
}

TEST(MlpTest, ShapesAndDeterminism) {
  Mlp a = SmallNet(1);
  Mlp b = SmallNet(1);
  EXPECT_EQ(a.input_size(), 3u);
  EXPECT_EQ(a.output_size(), 2u);
  EXPECT_EQ(a.num_layers(), 2u);
  EXPECT_EQ(a.FlatParameters(), b.FlatParameters());
  Mlp c = SmallNet(2);
  EXPECT_NE(a.FlatParameters(), c.FlatParameters());
}

TEST(MlpTest, InferMatchesForward) {
  Mlp net = SmallNet(3);
  Matrix x = Matrix::FromRows({{0.1, -0.5, 0.7}, {1.0, 0.0, -1.0}});
  Matrix fwd = net.Forward(x);
  Matrix inf = net.Infer(x);
  ASSERT_TRUE(fwd.SameShape(inf));
  for (size_t i = 0; i < fwd.size(); ++i) {
    EXPECT_DOUBLE_EQ(fwd.data()[i], inf.data()[i]);
  }
  std::vector<double> single = net.Infer(std::vector<double>{0.1, -0.5, 0.7});
  EXPECT_DOUBLE_EQ(single[0], fwd.At(0, 0));
}

TEST(MlpTest, ParameterCountMatchesViews) {
  Mlp net = SmallNet(4);
  size_t total = 0;
  for (const ParamView& v : net.ParamViews()) total += v.size;
  EXPECT_EQ(total, net.ParameterCount());
  EXPECT_EQ(net.ParameterCount(), 3u * 4 + 4 + 4 * 2 + 2);
}

TEST(MlpTest, FlatParameterRoundTrip) {
  Mlp a = SmallNet(5);
  Mlp b = SmallNet(6);
  b.SetFlatParameters(a.FlatParameters());
  EXPECT_EQ(a.FlatParameters(), b.FlatParameters());
  Matrix x = Matrix::FromRows({{0.3, 0.3, 0.3}});
  EXPECT_DOUBLE_EQ(a.Infer(x).At(0, 0), b.Infer(x).At(0, 0));
}

TEST(MlpTest, BlendFromInterpolates) {
  Mlp a = SmallNet(7);
  Mlp b = SmallNet(8);
  std::vector<double> pa = a.FlatParameters();
  std::vector<double> pb = b.FlatParameters();
  a.BlendFrom(b, 0.25);
  std::vector<double> blended = a.FlatParameters();
  for (size_t i = 0; i < blended.size(); ++i) {
    EXPECT_NEAR(blended[i], 0.75 * pa[i] + 0.25 * pb[i], 1e-12);
  }
  a.BlendFrom(b, 1.0);
  EXPECT_EQ(a.FlatParameters(), pb);
}

// Full backprop gradient check against central finite differences.
class MlpGradientCheckTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MlpGradientCheckTest, BackwardMatchesFiniteDifference) {
  Rng rng(GetParam());
  Mlp net({2, 3, 2}, {Activation::kSigmoid, Activation::kIdentity}, &rng);
  Matrix x(4, 2);
  Matrix target(4, 2);
  x.FillGaussian(&rng, 0.0, 1.0);
  target.FillGaussian(&rng, 0.0, 1.0);

  auto loss_at = [&](Mlp* n) {
    Matrix grad;
    return MseLoss(n->Infer(x), target, &grad);
  };

  net.ZeroGrad();
  Matrix pred = net.Forward(x);
  Matrix grad;
  MseLoss(pred, target, &grad);
  net.Backward(grad);

  const double kEps = 1e-6;
  std::vector<double> flat = net.FlatParameters();
  std::vector<ParamView> views = net.ParamViews();
  size_t offset = 0;
  // Matches FlatParameters ordering: weight then bias per layer.
  for (const ParamView& view : views) {
    for (size_t j = 0; j < view.size; j += 5) {  // Sample every 5th param.
      std::vector<double> bumped = flat;
      bumped[offset + j] += kEps;
      Mlp plus = net;
      plus.SetFlatParameters(bumped);
      bumped[offset + j] -= 2.0 * kEps;
      Mlp minus = net;
      minus.SetFlatParameters(bumped);
      double numeric = (loss_at(&plus) - loss_at(&minus)) / (2.0 * kEps);
      EXPECT_NEAR(view.grad[j], numeric, 1e-5)
          << "param " << offset + j;
    }
    offset += view.size;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MlpGradientCheckTest,
                         ::testing::Values(11, 22, 33));

TEST(MlpTest, BackwardAccumulatesUntilZeroGrad) {
  Mlp net = SmallNet(9);
  Matrix x = Matrix::FromRows({{1.0, 1.0, 1.0}});
  Matrix t = Matrix::FromRows({{0.0, 0.0}});
  Matrix grad;
  net.Forward(x);
  MseLoss(net.Forward(x), t, &grad);
  net.Backward(grad);
  double g1 = net.ParamViews()[0].grad[0];
  net.Backward(grad);
  EXPECT_NEAR(net.ParamViews()[0].grad[0], 2.0 * g1, 1e-12);
  net.ZeroGrad();
  EXPECT_DOUBLE_EQ(net.ParamViews()[0].grad[0], 0.0);
}

TEST(MlpDeathTest, WrongInputWidthAborts) {
  Mlp net = SmallNet(10);
  Matrix bad(1, 5);
  EXPECT_DEATH(net.Forward(bad), "");
}

}  // namespace
}  // namespace crowdrl::nn
