#include "nn/activation.h"

#include <cmath>

#include <gtest/gtest.h>

namespace crowdrl::nn {
namespace {

TEST(ActivationTest, ReluValues) {
  Matrix m = Matrix::FromRows({{-1.0, 0.0, 2.0}});
  ApplyActivation(Activation::kRelu, &m);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 2.0);
}

TEST(ActivationTest, SigmoidValues) {
  Matrix m = Matrix::FromRows({{0.0, 100.0, -100.0}});
  ApplyActivation(Activation::kSigmoid, &m);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.5);
  EXPECT_NEAR(m.At(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(m.At(0, 2), 0.0, 1e-12);
}

TEST(ActivationTest, TanhValues) {
  Matrix m = Matrix::FromRows({{0.0, 1.0}});
  ApplyActivation(Activation::kTanh, &m);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
  EXPECT_NEAR(m.At(0, 1), std::tanh(1.0), 1e-12);
}

TEST(ActivationTest, IdentityIsNoop) {
  Matrix m = Matrix::FromRows({{-3.0, 4.0}});
  ApplyActivation(Activation::kIdentity, &m);
  EXPECT_DOUBLE_EQ(m.At(0, 0), -3.0);
}

class ActivationGradTest : public ::testing::TestWithParam<Activation> {};

// Finite-difference check: d(act(x))/dx must match ApplyActivationGrad
// evaluated from the post-activation value.
TEST_P(ActivationGradTest, MatchesFiniteDifference) {
  Activation act = GetParam();
  const double kEps = 1e-6;
  for (double x : {-1.7, -0.3, 0.4, 2.1}) {
    Matrix plus = Matrix::FromRows({{x + kEps}});
    Matrix minus = Matrix::FromRows({{x - kEps}});
    ApplyActivation(act, &plus);
    ApplyActivation(act, &minus);
    double numeric = (plus.At(0, 0) - minus.At(0, 0)) / (2.0 * kEps);

    Matrix post = Matrix::FromRows({{x}});
    ApplyActivation(act, &post);
    Matrix grad = Matrix::FromRows({{1.0}});
    ApplyActivationGrad(act, post, &grad);
    EXPECT_NEAR(grad.At(0, 0), numeric, 1e-5)
        << ActivationName(act) << " at x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(All, ActivationGradTest,
                         ::testing::Values(Activation::kIdentity,
                                           Activation::kRelu,
                                           Activation::kSigmoid,
                                           Activation::kTanh));

}  // namespace
}  // namespace crowdrl::nn
