#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "util/random.h"

namespace crowdrl::nn {
namespace {

// Trains y = 2x - 1 with a linear net; returns the final MSE.
double TrainLinear(Optimizer* optimizer, int steps, uint64_t seed) {
  Rng rng(seed);
  Mlp net({1, 1}, {Activation::kIdentity}, &rng);
  Matrix x(16, 1);
  Matrix y(16, 1);
  for (size_t i = 0; i < 16; ++i) {
    double xi = rng.Uniform(-1.0, 1.0);
    x.At(i, 0) = xi;
    y.At(i, 0) = 2.0 * xi - 1.0;
  }
  double loss = 0.0;
  for (int s = 0; s < steps; ++s) {
    Matrix grad;
    loss = MseLoss(net.Forward(x), y, &grad);
    net.Backward(grad);
    optimizer->Step(&net);
  }
  return loss;
}

TEST(SgdTest, ConvergesOnLinearRegression) {
  Sgd sgd(0.3);
  EXPECT_LT(TrainLinear(&sgd, 300, 1), 1e-6);
}

TEST(SgdTest, MomentumConverges) {
  Sgd sgd(0.1, 0.9);
  EXPECT_LT(TrainLinear(&sgd, 300, 2), 1e-6);
}

TEST(AdamTest, ConvergesOnLinearRegression) {
  Adam adam(0.05);
  EXPECT_LT(TrainLinear(&adam, 500, 3), 1e-5);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Rng rng(4);
  Mlp net({1, 1}, {Activation::kIdentity}, &rng);
  // No data gradient, only decay: weights must shrink toward zero.
  Sgd sgd(0.1, 0.0, 0.5);
  double before = std::abs(net.ParamViews()[0].value[0]);
  for (int i = 0; i < 50; ++i) {
    net.ZeroGrad();
    sgd.Step(&net);
  }
  double after = std::abs(net.ParamViews()[0].value[0]);
  EXPECT_LT(after, before * 0.1 + 1e-9);
}

TEST(OptimizerTest, StepZeroesGradients) {
  Rng rng(5);
  Mlp net({2, 2}, {Activation::kIdentity}, &rng);
  Matrix x = Matrix::FromRows({{1.0, 1.0}});
  Matrix t = Matrix::FromRows({{0.0, 0.0}});
  Matrix grad;
  MseLoss(net.Forward(x), t, &grad);
  net.Backward(grad);
  Sgd sgd(0.01);
  sgd.Step(&net);
  for (const ParamView& v : net.ParamViews()) {
    for (size_t i = 0; i < v.size; ++i) {
      EXPECT_DOUBLE_EQ(v.grad[i], 0.0);
    }
  }
}

TEST(OptimizerDeathTest, RebindingToDifferentNetworkAborts) {
  Rng rng(6);
  Mlp small({1, 1}, {Activation::kIdentity}, &rng);
  Mlp big({4, 4}, {Activation::kIdentity}, &rng);
  Sgd sgd(0.1);
  sgd.Step(&small);
  EXPECT_DEATH(sgd.Step(&big), "optimizer bound");
}

TEST(AdamTest, FirstStepHasUnitScaleRegardlessOfGradientMagnitude) {
  // Adam's bias-corrected first update is lr * g / (|g| + eps) — i.e.
  // approximately lr * sign(g) whatever the gradient scale.
  Rng rng(7);
  Mlp net({1, 1}, {Activation::kIdentity}, &rng);
  ParamView view = net.ParamViews()[0];
  double before = view.value[0];
  view.grad[0] = 1234.5;  // Huge gradient.
  Adam adam(0.01);
  adam.Step(&net);
  double after = net.ParamViews()[0].value[0];
  EXPECT_NEAR(before - after, 0.01, 1e-6);
}

}  // namespace
}  // namespace crowdrl::nn
