#include "rl/q_network.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace crowdrl::rl {
namespace {

QNetworkOptions SmallOptions() {
  QNetworkOptions options;
  options.feature_dim = 3;
  options.hidden_sizes = {8};
  options.seed = 5;
  return options;
}

TEST(QNetworkTest, PredictShapes) {
  QNetwork q(SmallOptions());
  EXPECT_EQ(q.feature_dim(), 3u);
  Matrix batch(4, 3, 0.1);
  std::vector<double> values = q.PredictBatch(batch);
  EXPECT_EQ(values.size(), 4u);
  EXPECT_DOUBLE_EQ(q.Predict({0.1, 0.1, 0.1}), values[0]);
}

TEST(QNetworkTest, TargetStartsInSyncWithOnline) {
  QNetwork q(SmallOptions());
  Matrix batch(2, 3, 0.3);
  std::vector<double> online = q.PredictBatch(batch);
  std::vector<double> target = q.TargetPredictBatch(batch);
  for (size_t i = 0; i < online.size(); ++i) {
    EXPECT_DOUBLE_EQ(online[i], target[i]);
  }
}

TEST(QNetworkTest, TrainingFitsConstantTarget) {
  QNetwork q(SmallOptions());
  // Transitions all terminal with reward 2: Q(x) must approach 2.
  std::vector<Transition> transitions;
  Rng rng(9);
  for (int i = 0; i < 32; ++i) {
    Transition t;
    t.features = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    t.reward = 2.0;
    t.terminal = true;
    transitions.push_back(std::move(t));
  }
  std::vector<const Transition*> batch;
  for (const Transition& t : transitions) batch.push_back(&t);
  double first_loss = q.TrainBatch(batch);
  double last_loss = first_loss;
  for (int step = 0; step < 500; ++step) last_loss = q.TrainBatch(batch);
  EXPECT_LT(last_loss, first_loss * 0.05);
  EXPECT_NEAR(q.Predict({0.5, 0.5, 0.5}), 2.0, 0.3);
}

TEST(QNetworkTest, BootstrapUsesGammaAndNextMaxQ) {
  QNetworkOptions options = SmallOptions();
  options.gamma = 0.5;
  options.learning_rate = 5e-3;
  QNetwork q(options);
  Transition t;
  t.features = {0.1, 0.2, 0.3};
  t.reward = 1.0;
  t.next_max_q = 4.0;
  t.terminal = false;
  // Target = 1 + 0.5 * 4 = 3; training long enough converges there.
  std::vector<const Transition*> batch = {&t};
  for (int step = 0; step < 3000; ++step) q.TrainBatch(batch);
  EXPECT_NEAR(q.Predict(t.features), 3.0, 0.4);
}

TEST(QNetworkTest, HardTargetSyncHappensAtPeriod) {
  QNetworkOptions options = SmallOptions();
  options.target_sync_period = 5;
  QNetwork q(options);
  Transition t;
  t.features = {1.0, 1.0, 1.0};
  t.reward = 10.0;
  t.terminal = true;
  std::vector<const Transition*> batch = {&t};
  Matrix probe(1, 3, 1.0);
  double target_before = q.TargetPredictBatch(probe)[0];
  for (int i = 0; i < 4; ++i) q.TrainBatch(batch);
  // Not yet synced (4 < 5): target unchanged.
  EXPECT_DOUBLE_EQ(q.TargetPredictBatch(probe)[0], target_before);
  q.TrainBatch(batch);  // 5th step triggers sync.
  EXPECT_DOUBLE_EQ(q.TargetPredictBatch(probe)[0],
                   q.PredictBatch(probe)[0]);
}

TEST(QNetworkTest, SoftSyncMovesTargetEveryStep) {
  QNetworkOptions options = SmallOptions();
  options.soft_tau = 0.5;
  QNetwork q(options);
  Transition t;
  t.features = {1.0, 1.0, 1.0};
  t.reward = 10.0;
  t.terminal = true;
  std::vector<const Transition*> batch = {&t};
  Matrix probe(1, 3, 1.0);
  double before = q.TargetPredictBatch(probe)[0];
  q.TrainBatch(batch);
  double after = q.TargetPredictBatch(probe)[0];
  EXPECT_NE(before, after);
}

TEST(QNetworkTest, ParameterRoundTripResetsTarget) {
  QNetwork a(SmallOptions());
  QNetworkOptions other = SmallOptions();
  other.seed = 99;
  QNetwork b(other);
  b.SetFlatParameters(a.FlatParameters());
  Matrix probe(1, 3, 0.7);
  EXPECT_DOUBLE_EQ(a.PredictBatch(probe)[0], b.PredictBatch(probe)[0]);
  EXPECT_DOUBLE_EQ(b.PredictBatch(probe)[0],
                   b.TargetPredictBatch(probe)[0]);
}

}  // namespace
}  // namespace crowdrl::rl
