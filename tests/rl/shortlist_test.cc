// Shortlist-pruned selection (ShortlistPruner + DqnAgent::SelectBatch):
//  - the pruned path must select exactly what full scoring selects, at
//    every iteration of a randomized run, including across
//    checkpoint/resume (the exactness gate falls back on any ambiguity);
//  - the pruner's bookkeeping: warmup, table invalidation on cache
//    rebuild, bound soundness adaptation, boost dynamics;
//  - the ScoreCache drift accumulators the bounds are built from.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "io/serializer.h"
#include "rl/dqn_agent.h"
#include "rl/score_cache.h"
#include "rl/shortlist.h"
#include "util/random.h"

namespace crowdrl::rl {
namespace {

constexpr size_t kObjects = 40;
constexpr size_t kAnnotators = 10;
constexpr int kClasses = 3;

/// A drifting workload: answers arrive, classifier beliefs get nudged (not
/// re-rolled — steady drift is the regime pruning is built for), qualities
/// creep, progress counters advance.
struct Scenario {
  crowd::AnswerLog answers{kObjects, kAnnotators};
  std::vector<double> costs;
  std::vector<double> qualities;
  std::vector<bool> is_expert;
  std::vector<bool> labelled;
  std::vector<bool> affordable;
  Matrix class_probs{kObjects, static_cast<size_t>(kClasses)};
  size_t probs_version = 0;
  double budget_fraction = 1.0;
  double fraction_labelled = 0.0;
  Rng rng{907};

  Scenario() {
    for (size_t j = 0; j < kAnnotators; ++j) {
      bool expert = j + 1 == kAnnotators;
      costs.push_back(expert ? 6.0 : 1.0 + 0.2 * static_cast<double>(j));
      qualities.push_back(0.55 + 0.03 * static_cast<double>(j));
      is_expert.push_back(expert);
      affordable.push_back(true);
    }
    labelled.assign(kObjects, false);
    for (size_t i = 0; i < kObjects; ++i) {
      double sum = 0.0;
      double* row = class_probs.Row(i);
      for (int c = 0; c < kClasses; ++c) {
        row[c] = 0.1 + rng.Uniform();
        sum += row[c];
      }
      for (int c = 0; c < kClasses; ++c) row[c] /= sum;
    }
    probs_version = 1;
  }

  void NudgeProbs() {
    for (size_t i = 0; i < kObjects; ++i) {
      double sum = 0.0;
      double* row = class_probs.Row(i);
      for (int c = 0; c < kClasses; ++c) {
        row[c] = std::max(0.01, row[c] + 0.02 * (rng.Uniform() - 0.5));
        sum += row[c];
      }
      for (int c = 0; c < kClasses; ++c) row[c] /= sum;
    }
    ++probs_version;
  }

  StateView View() const {
    StateView view;
    view.answers = &answers;
    view.num_classes = kClasses;
    view.annotator_costs = &costs;
    view.annotator_qualities = &qualities;
    view.annotator_is_expert = &is_expert;
    view.class_probs = &class_probs;
    view.class_probs_version = probs_version;
    view.labelled = &labelled;
    view.budget_fraction_remaining = budget_fraction;
    view.fraction_labelled = fraction_labelled;
    view.max_cost = 6.0;
    return view;
  }
};

DqnAgentOptions MakeOptions(bool prune) {
  DqnAgentOptions options;
  options.seed = 61;
  options.q.seed = 67;
  options.prune = prune;
  // Small grid: force pruning to engage by shrinking the shortlist well
  // below the pair count (the auto floor of 256 would score everything).
  options.prune_shortlist = 48;
  options.min_replay_before_training = 16;
  options.train_batch = 8;
  options.train_steps_per_observe = 2;
  return options;
}

DqnAgent RoundTrip(const DqnAgent& agent, DqnAgentOptions options) {
  io::Writer writer;
  agent.SaveState(&writer);
  DqnAgent fresh(std::move(options));
  io::Reader reader(writer.bytes());
  EXPECT_TRUE(fresh.LoadState(&reader).ok());
  return fresh;
}

void ExpectSameAssignments(const std::vector<Assignment>& got,
                           const std::vector<Assignment>& want, int iter) {
  ASSERT_EQ(got.size(), want.size()) << "iter " << iter;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].object, want[i].object) << "iter " << iter;
    ASSERT_EQ(got[i].annotators, want[i].annotators)
        << "iter " << iter << " object " << got[i].object;
  }
}

// Tentpole property: a pruned agent (with audit mode double-checking every
// gated selection internally) must produce the same assignments as an
// unpruned twin at every iteration of a drifting run, including across a
// mid-run checkpoint/restore (the pruner is not serialized; its warmup
// reruns).
TEST(ShortlistPruningTest, AuditedPrunedRunMatchesFullScoringExactly) {
  Scenario s;
  DqnAgentOptions pruned_options = MakeOptions(/*prune=*/true);
  pruned_options.prune_audit = true;
  DqnAgent pruned(pruned_options);
  DqnAgent full(MakeOptions(/*prune=*/false));
  pruned.BeginEpisode(kObjects, kAnnotators);
  full.BeginEpisode(kObjects, kAnnotators);

  for (int iter = 0; iter < 20; ++iter) {
    if (iter % 2 == 1) s.NudgeProbs();
    if (iter % 5 == 4) {
      s.qualities[s.rng.UniformInt(static_cast<int>(kAnnotators))] += 0.01;
    }
    s.budget_fraction = std::max(0.0, s.budget_fraction - 0.02);

    std::vector<Assignment> got = pruned.SelectBatch(
        s.View(), /*k=*/2, /*num_objects_to_pick=*/4, s.affordable);
    std::vector<Assignment> want = full.SelectBatch(
        s.View(), /*k=*/2, /*num_objects_to_pick=*/4, s.affordable);
    ExpectSameAssignments(got, want, iter);

    for (const Assignment& assignment : want) {
      for (int j : assignment.annotators) {
        s.answers.Record(assignment.object, j, s.rng.UniformInt(kClasses));
      }
    }
    s.fraction_labelled =
        std::min(1.0, s.fraction_labelled + 0.01);
    double reward = s.rng.Uniform();
    pruned.Observe(reward, s.View(), s.affordable, /*terminal=*/false);
    full.Observe(reward, s.View(), s.affordable, /*terminal=*/false);

    if (iter == 9) {
      pruned = RoundTrip(pruned, pruned_options);
      full = RoundTrip(full, MakeOptions(/*prune=*/false));
    }
  }
  // Pruning actually engaged (this is not a vacuous all-fallback run) and
  // bounded rows were genuinely skipped.
  const ShortlistPruner::Stats& stats = pruned.shortlist_pruner().stats();
  EXPECT_GT(stats.pruned_iterations, 0u);
  EXPECT_GT(stats.bounded_rows, 0u);
  EXPECT_GT(stats.full_iterations, 0u);  // Warmups ran (twice: restore).
}

// Epsilon-greedy consumes RNG inside Score, so the pruned path must stand
// down entirely (a shortlist pass would desync the exploration stream).
TEST(ShortlistPruningTest, EpsilonGreedyAlwaysRunsFullPath) {
  Scenario s;
  DqnAgentOptions options = MakeOptions(/*prune=*/true);
  options.exploration = ExplorationMode::kEpsilonGreedy;
  DqnAgent agent(options);
  agent.BeginEpisode(kObjects, kAnnotators);
  for (int iter = 0; iter < 4; ++iter) {
    agent.SelectBatch(s.View(), /*k=*/2, /*num_objects_to_pick=*/3,
                      s.affordable);
  }
  const ShortlistPruner::Stats& stats = agent.shortlist_pruner().stats();
  EXPECT_EQ(stats.pruned_iterations, 0u);
  EXPECT_EQ(stats.full_iterations, 0u);  // Never even consulted.
}

TEST(ShortlistPrunerTest, WarmupAndInvalidationLifecycle) {
  Scenario s;
  ScoreCache cache;
  cache.Sync(s.View());

  ShortlistOptions options;
  options.warmup = 2;
  ShortlistPruner pruner(options);
  pruner.Reset(kObjects, kAnnotators);
  EXPECT_FALSE(pruner.Ready());

  std::vector<Action> pairs;
  for (size_t i = 0; i < kObjects; ++i) {
    for (size_t j = 0; j < kAnnotators; ++j) {
      pairs.push_back({static_cast<int>(i), static_cast<int>(j)});
    }
  }
  std::vector<double> raw_q(pairs.size(), 0.0);
  for (size_t p = 0; p < pairs.size(); ++p) {
    raw_q[p] = 0.001 * static_cast<double>(p);
  }
  std::vector<double> bonus(pairs.size(), 0.0);

  pruner.BeginIteration(cache);
  pruner.RecordExact(cache, /*train_steps=*/0, pairs, raw_q, nullptr,
                     nullptr, /*full_pass=*/true);
  EXPECT_FALSE(pruner.Ready());
  pruner.BeginIteration(cache);
  pruner.RecordExact(cache, /*train_steps=*/0, pairs, raw_q, nullptr,
                     nullptr, /*full_pass=*/true);
  EXPECT_TRUE(pruner.Ready());

  // With zero drift and zero elapsed train steps, every bound collapses
  // to stale_q + margin and none is infinite.
  std::vector<double> ub;
  EXPECT_EQ(pruner.UpperBounds(cache, /*train_steps=*/0, pairs, bonus, &ub),
            0u);
  for (size_t p = 0; p < pairs.size(); ++p) {
    EXPECT_GE(ub[p], raw_q[p]);
    EXPECT_LE(ub[p], raw_q[p] + options.margin + 1e-15);
  }

  // A cache full rebuild resets the drift accumulators, so the next
  // BeginIteration must drop every stale entry: all bounds go infinite.
  cache.Invalidate();
  cache.Sync(s.View());
  ASSERT_EQ(cache.cumulative_stats().full_rebuilds, 1u);
  pruner.BeginIteration(cache);
  EXPECT_EQ(pruner.UpperBounds(cache, /*train_steps=*/0, pairs, bonus, &ub),
            pairs.size());
  for (double b : ub) {
    EXPECT_TRUE(std::isinf(b));
  }
}

// The session-churn lifecycle (labelling service): when an annotator
// disconnects its column is evicted — those pairs come back as must-score
// (+inf bound) instead of carrying bounds snapshotted against a pool that
// no longer exists — and every other column is untouched.
TEST(ShortlistPrunerTest, EvictAnnotatorDropsOnlyThatColumn) {
  Scenario s;
  ScoreCache cache;
  cache.Sync(s.View());

  ShortlistOptions options;
  options.warmup = 1;
  ShortlistPruner pruner(options);
  pruner.Reset(kObjects, kAnnotators);

  std::vector<Action> pairs;
  for (size_t i = 0; i < kObjects; ++i) {
    for (size_t j = 0; j < kAnnotators; ++j) {
      pairs.push_back({static_cast<int>(i), static_cast<int>(j)});
    }
  }
  std::vector<double> raw_q(pairs.size(), 0.0);
  std::vector<double> bonus(pairs.size(), 0.0);
  pruner.BeginIteration(cache);
  pruner.RecordExact(cache, /*train_steps=*/0, pairs, raw_q, nullptr,
                     nullptr, /*full_pass=*/true);
  ASSERT_TRUE(pruner.Ready());

  std::vector<double> ub;
  ASSERT_EQ(pruner.UpperBounds(cache, /*train_steps=*/0, pairs, bonus, &ub),
            0u);

  constexpr int kGone = 3;
  pruner.EvictAnnotator(kGone);
  EXPECT_EQ(pruner.UpperBounds(cache, /*train_steps=*/0, pairs, bonus, &ub),
            kObjects);
  for (size_t p = 0; p < pairs.size(); ++p) {
    if (pairs[p].annotator == kGone) {
      EXPECT_TRUE(std::isinf(ub[p]));
    } else {
      EXPECT_FALSE(std::isinf(ub[p]));
    }
  }

  // Re-recording after a reconnect restores the column.
  pruner.BeginIteration(cache);
  pruner.RecordExact(cache, /*train_steps=*/0, pairs, raw_q, nullptr,
                     nullptr, /*full_pass=*/true);
  EXPECT_EQ(pruner.UpperBounds(cache, /*train_steps=*/0, pairs, bonus, &ub),
            0u);

  // Evicting before the table is sized (fresh episode) is a safe no-op.
  ShortlistPruner unsized;
  unsized.EvictAnnotator(0);
}

TEST(ShortlistPrunerTest, SensitivityAdaptsToObservedMoves) {
  Scenario s;
  ScoreCache cache;
  cache.Sync(s.View());
  ShortlistPruner pruner{ShortlistOptions{}};
  pruner.Reset(kObjects, kAnnotators);

  std::vector<Action> pairs = {{0, 0}};
  pruner.BeginIteration(cache);
  pruner.RecordExact(cache, /*train_steps=*/0, pairs, {1.0}, nullptr,
                     nullptr, /*full_pass=*/true);

  // Q moved by 0.5 with no drift and 10 elapsed train steps: the bound
  // can only blame training, so beta must grow to at least 2*0.5/10.
  double beta_before = pruner.beta();
  pruner.BeginIteration(cache);
  pruner.RecordExact(cache, /*train_steps=*/10, pairs, {1.5}, nullptr,
                     nullptr, /*full_pass=*/true);
  EXPECT_GE(pruner.beta(), 2.0 * 0.5 / 10.0);
  EXPECT_GE(pruner.beta(), beta_before);

  // The adapted bound now covers a same-sized move.
  std::vector<double> ub;
  pruner.UpperBounds(cache, /*train_steps=*/20, pairs, {0.0}, &ub);
  EXPECT_GE(ub[0], 1.5 + 0.5);
}

TEST(ShortlistPrunerTest, BoundViolationIsReportedAndBoostReacts) {
  Scenario s;
  ScoreCache cache;
  cache.Sync(s.View());
  ShortlistPruner pruner{ShortlistOptions{}};
  pruner.Reset(kObjects, kAnnotators);
  std::vector<Action> pairs = {{0, 0}};
  pruner.BeginIteration(cache);
  pruner.RecordExact(cache, /*train_steps=*/0, pairs, {1.0}, nullptr,
                     nullptr, /*full_pass=*/true);

  // Claim the pair was admitted under a bound of 1.0 but rescored to 2.0:
  // that is a precheck violation the caller must fall back on.
  std::vector<double> prior_ub = {1.0};
  std::vector<double> bonus = {0.0};
  pruner.BeginIteration(cache);
  EXPECT_EQ(pruner.RecordExact(cache, /*train_steps=*/1, pairs, {2.0},
                               &prior_ub, &bonus, /*full_pass=*/false),
            1u);

  // Boost dynamics: doubles on gate fallback (capped), halves back only
  // after a streak of successes.
  EXPECT_EQ(pruner.boost(), 1u);
  pruner.NoteGateFallback();
  EXPECT_EQ(pruner.boost(), 2u);
  pruner.NoteGateFallback();
  EXPECT_EQ(pruner.boost(), 4u);
  for (int i = 0; i < 7; ++i) pruner.NotePrunedSuccess(1, 1);
  EXPECT_EQ(pruner.boost(), 4u);  // Streak not reached yet.
  pruner.NotePrunedSuccess(1, 1);
  EXPECT_EQ(pruner.boost(), 2u);
  EXPECT_EQ(pruner.stats().gate_fallbacks, 2u);
  EXPECT_EQ(pruner.stats().pruned_iterations, 8u);
}

TEST(ShortlistPrunerTest, ShortlistSizeHonoursFloorBoostAndMustScore) {
  ShortlistOptions options;  // Auto sizing.
  ShortlistPruner pruner(options);
  pruner.Reset(kObjects, kAnnotators);
  // Auto: max(256, pairs/16), clamped to the pair count.
  EXPECT_EQ(pruner.ShortlistSize(10000, 0), std::max<size_t>(256, 625));
  EXPECT_EQ(pruner.ShortlistSize(300, 0), 256u);  // Floor, below the grid.
  EXPECT_EQ(pruner.ShortlistSize(200, 0), 200u);  // Clamped to the grid.
  EXPECT_EQ(pruner.ShortlistSize(10000, 40), 665u);  // Must-score on top.

  ShortlistOptions fixed;
  fixed.shortlist = 64;
  ShortlistPruner small(fixed);
  small.Reset(kObjects, kAnnotators);
  EXPECT_EQ(small.ShortlistSize(10000, 0), 64u);
  small.NoteGateFallback();
  EXPECT_EQ(small.ShortlistSize(10000, 0), 128u);  // Boost doubles it.
}

TEST(ScoreCacheDriftTest, AccumulatorsTrackBlockRefreshes) {
  Scenario s;
  ScoreCache cache;
  cache.Sync(s.View());
  // Fresh rebuild: all drift zero.
  for (double d : cache.object_drift()) EXPECT_EQ(d, 0.0);
  for (double d : cache.annotator_drift()) EXPECT_EQ(d, 0.0);
  EXPECT_EQ(cache.global_drift(), 0.0);

  // One answered object: its history block refreshes, its drift grows,
  // everyone else's stays put.
  s.answers.Record(7, 3, 1);
  cache.Sync(s.View());
  EXPECT_GT(cache.object_drift()[7], 0.0);
  for (size_t i = 0; i < kObjects; ++i) {
    if (i != 7) EXPECT_EQ(cache.object_drift()[i], 0.0) << "object " << i;
  }

  // A quality change refreshes exactly that annotator's block.
  s.qualities[2] += 0.05;
  cache.Sync(s.View());
  EXPECT_GT(cache.annotator_drift()[2], 0.0);
  for (size_t j = 0; j < kAnnotators; ++j) {
    if (j != 2) EXPECT_EQ(cache.annotator_drift()[j], 0.0);
  }

  // Progress counters move the global block.
  s.fraction_labelled = 0.25;
  cache.Sync(s.View());
  EXPECT_GT(cache.global_drift(), 0.0);

  // Drift is monotone under further changes...
  double obj7 = cache.object_drift()[7];
  s.answers.Record(7, 4, 2);
  cache.Sync(s.View());
  EXPECT_GE(cache.object_drift()[7], obj7);

  // ...and resets wholesale on a full rebuild.
  cache.Invalidate();
  cache.Sync(s.View());
  for (double d : cache.object_drift()) EXPECT_EQ(d, 0.0);
  for (double d : cache.annotator_drift()) EXPECT_EQ(d, 0.0);
  EXPECT_EQ(cache.global_drift(), 0.0);
}

}  // namespace
}  // namespace crowdrl::rl
