// Hierarchical candidate generation (BucketHierarchy +
// DqnAgent::SelectBatch at scale):
//  - the hierarchical path must select exactly what full enumeration +
//    scoring selects, at every iteration of a randomized drifting run,
//    including across checkpoint/resume, at thread counts 1 and 8 (audit
//    mode additionally cross-checks every gated selection internally);
//  - the bucket x group tiling's bookkeeping: ranges, liveness, tile
//    records, bound monotonicity, invalidation on cache rebuild;
//  - the default hier_min_pairs threshold keeps small grids on the flat
//    path.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "io/serializer.h"
#include "rl/dqn_agent.h"
#include "rl/hierarchy.h"
#include "rl/score_cache.h"
#include "rl/shortlist.h"
#include "util/random.h"

namespace crowdrl::rl {
namespace {

constexpr size_t kObjects = 40;
constexpr size_t kAnnotators = 10;
constexpr int kClasses = 3;

/// Same drifting workload as shortlist_test: answers arrive, classifier
/// beliefs get nudged, qualities creep, progress counters advance.
struct Scenario {
  crowd::AnswerLog answers{kObjects, kAnnotators};
  std::vector<double> costs;
  std::vector<double> qualities;
  std::vector<bool> is_expert;
  std::vector<bool> labelled;
  std::vector<bool> affordable;
  Matrix class_probs{kObjects, static_cast<size_t>(kClasses)};
  size_t probs_version = 0;
  double budget_fraction = 1.0;
  double fraction_labelled = 0.0;
  Rng rng{907};

  Scenario() {
    for (size_t j = 0; j < kAnnotators; ++j) {
      bool expert = j + 1 == kAnnotators;
      costs.push_back(expert ? 6.0 : 1.0 + 0.2 * static_cast<double>(j));
      qualities.push_back(0.55 + 0.03 * static_cast<double>(j));
      is_expert.push_back(expert);
      affordable.push_back(true);
    }
    labelled.assign(kObjects, false);
    for (size_t i = 0; i < kObjects; ++i) {
      double sum = 0.0;
      double* row = class_probs.Row(i);
      for (int c = 0; c < kClasses; ++c) {
        row[c] = 0.1 + rng.Uniform();
        sum += row[c];
      }
      for (int c = 0; c < kClasses; ++c) row[c] /= sum;
    }
    probs_version = 1;
  }

  void NudgeProbs() {
    for (size_t i = 0; i < kObjects; ++i) {
      double sum = 0.0;
      double* row = class_probs.Row(i);
      for (int c = 0; c < kClasses; ++c) {
        row[c] = std::max(0.01, row[c] + 0.02 * (rng.Uniform() - 0.5));
        sum += row[c];
      }
      for (int c = 0; c < kClasses; ++c) row[c] /= sum;
    }
    ++probs_version;
  }

  StateView View() const {
    StateView view;
    view.answers = &answers;
    view.num_classes = kClasses;
    view.annotator_costs = &costs;
    view.annotator_qualities = &qualities;
    view.annotator_is_expert = &is_expert;
    view.class_probs = &class_probs;
    view.class_probs_version = probs_version;
    view.labelled = &labelled;
    view.budget_fraction_remaining = budget_fraction;
    view.fraction_labelled = fraction_labelled;
    view.max_cost = 6.0;
    return view;
  }
};

DqnAgentOptions MakeOptions(bool hier, int threads) {
  DqnAgentOptions options;
  options.seed = 61;
  options.q.seed = 67;
  options.threads = threads;
  // The factorized head is ULP-different from the dense forward and the
  // hierarchical path always runs dense: pin both twins to dense so the
  // comparison is over identical floating-point programs.
  options.factorized_q_head = false;
  options.min_replay_before_training = 16;
  options.train_batch = 8;
  options.train_steps_per_observe = 2;
  options.hier = hier;
  if (hier) {
    // Force the hierarchy onto this deliberately tiny grid: engage at any
    // size, with buckets small enough that the descent has real structure
    // (5 buckets x 3 groups) and the gates real remainders to bound.
    options.hier_min_pairs = 0;
    options.hier_object_bucket = 8;
    options.hier_annotator_group = 4;
    options.prune_audit = true;
  } else {
    options.prune = false;
  }
  return options;
}

DqnAgent RoundTrip(const DqnAgent& agent, DqnAgentOptions options) {
  io::Writer writer;
  agent.SaveState(&writer);
  DqnAgent fresh(std::move(options));
  io::Reader reader(writer.bytes());
  EXPECT_TRUE(fresh.LoadState(&reader).ok());
  return fresh;
}

void ExpectSameAssignments(const std::vector<Assignment>& got,
                           const std::vector<Assignment>& want, int iter) {
  ASSERT_EQ(got.size(), want.size()) << "iter " << iter;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].object, want[i].object) << "iter " << iter;
    ASSERT_EQ(got[i].annotators, want[i].annotators)
        << "iter " << iter << " object " << got[i].object;
  }
}

class HierarchicalSelectionTest : public ::testing::TestWithParam<int> {};

// Tentpole property: the hierarchical agent (audit mode double-checking
// every gated selection against full scoring internally) must produce the
// same assignments as a flat full-scoring twin at every iteration of a
// drifting run, including across a mid-run checkpoint/restore, and the
// run must not be vacuous (gated sub-linear selections actually served).
TEST_P(HierarchicalSelectionTest, AuditedRunMatchesFullScoringExactly) {
  const int threads = GetParam();
  Scenario s;
  DqnAgentOptions hier_options = MakeOptions(/*hier=*/true, threads);
  DqnAgent hier(hier_options);
  DqnAgent full(MakeOptions(/*hier=*/false, threads));
  hier.BeginEpisode(kObjects, kAnnotators);
  full.BeginEpisode(kObjects, kAnnotators);
  ASSERT_TRUE(hier.HierEngaged());
  ASSERT_FALSE(full.HierEngaged());

  size_t gated_before_restore = 0;
  for (int iter = 0; iter < 24; ++iter) {
    if (iter % 2 == 1) s.NudgeProbs();
    if (iter % 5 == 4) {
      s.qualities[s.rng.UniformInt(static_cast<int>(kAnnotators))] += 0.01;
    }
    s.budget_fraction = std::max(0.0, s.budget_fraction - 0.02);

    std::vector<Assignment> got = hier.SelectBatch(
        s.View(), /*k=*/2, /*num_objects_to_pick=*/4, s.affordable);
    std::vector<Assignment> want = full.SelectBatch(
        s.View(), /*k=*/2, /*num_objects_to_pick=*/4, s.affordable);
    ExpectSameAssignments(got, want, iter);

    for (const Assignment& assignment : want) {
      for (int j : assignment.annotators) {
        s.answers.Record(assignment.object, j, s.rng.UniformInt(kClasses));
      }
    }
    s.fraction_labelled = std::min(1.0, s.fraction_labelled + 0.01);
    double reward = s.rng.Uniform();
    hier.Observe(reward, s.View(), s.affordable, /*terminal=*/false);
    full.Observe(reward, s.View(), s.affordable, /*terminal=*/false);

    if (iter == 11) {
      gated_before_restore = hier.hier_stats().gated_iterations;
      hier = RoundTrip(hier, hier_options);
      full = RoundTrip(full, MakeOptions(/*hier=*/false, threads));
      ASSERT_TRUE(hier.HierEngaged());  // Restore re-engages the tiling.
    }
  }

  // Non-vacuity: the hierarchical path genuinely ran, served gated
  // sub-linear selections (not only full fallbacks), refreshed tile
  // representatives, and the descent expanded a strict subset of the
  // live buckets at least overall.
  const DqnAgent::HierStats& stats = hier.hier_stats();
  EXPECT_EQ(stats.iterations, 12u);  // Post-restore iterations only.
  EXPECT_GT(stats.gated_iterations, 0u);
  EXPECT_GT(stats.rep_refreshes, 0u);
  EXPECT_GT(stats.scored_pairs, 0u);
  EXPECT_GT(gated_before_restore, 0u);  // Pre-restore half engaged too.
  EXPECT_LE(stats.expanded_buckets, stats.live_buckets);
}

INSTANTIATE_TEST_SUITE_P(Threads, HierarchicalSelectionTest,
                         ::testing::Values(1, 8));

// The default hier_min_pairs keeps small grids (every existing workload)
// on the flat path: no tiling, no behavior change.
TEST(HierarchicalSelectionTest, SmallGridStaysOnFlatPathByDefault) {
  Scenario s;
  DqnAgentOptions options;  // Defaults: hier on, threshold 2^22 pairs.
  DqnAgent agent(options);
  agent.BeginEpisode(kObjects, kAnnotators);
  EXPECT_FALSE(agent.HierEngaged());
  agent.SelectBatch(s.View(), /*k=*/2, /*num_objects_to_pick=*/3,
                    s.affordable);
  EXPECT_EQ(agent.hier_stats().iterations, 0u);
}

TEST(BucketHierarchyTest, RangesPartitionTheGrid) {
  BucketHierarchy hierarchy;
  HierarchyOptions options;
  options.object_bucket = 8;
  options.annotator_group = 4;
  hierarchy.Reset(/*num_objects=*/21, /*num_annotators=*/10, options);
  EXPECT_EQ(hierarchy.num_buckets(), 3u);  // 8 + 8 + 5.
  EXPECT_EQ(hierarchy.num_groups(), 3u);   // 4 + 4 + 2.

  size_t covered = 0;
  for (size_t b = 0; b < hierarchy.num_buckets(); ++b) {
    const auto [begin, end] = hierarchy.BucketRange(b);
    EXPECT_LT(begin, end);
    for (size_t i = begin; i < end; ++i) {
      EXPECT_EQ(hierarchy.BucketOf(static_cast<int>(i)), b);
    }
    covered += end - begin;
  }
  EXPECT_EQ(covered, 21u);
  const auto [last_begin, last_end] = hierarchy.GroupRange(2);
  EXPECT_EQ(last_begin, 8u);
  EXPECT_EQ(last_end, 10u);  // Ragged tail group.
}

// Tile bounds: a freshly recorded representative yields a finite bound
// covering its own q plus the tile's spatial span; unseen tiles are
// +infinity (must-refresh); a cache full rebuild invalidates every record.
TEST(BucketHierarchyTest, TileRecordLifecycleAndBoundCoverage) {
  Scenario s;
  ScoreCache cache;
  constexpr size_t kBucket = 8;
  cache.ConfigureObjectBuckets(kBucket);
  cache.Sync(s.View());
  cache.RefreshBucketBoxes();

  HierarchyOptions options;
  options.object_bucket = kBucket;
  options.annotator_group = 4;
  BucketHierarchy hierarchy;
  hierarchy.Reset(kObjects, kAnnotators, options);
  hierarchy.BeginIteration(cache, s.labelled, s.affordable);

  // Everything unlabelled and affordable: all buckets and groups live.
  for (size_t b = 0; b < hierarchy.num_buckets(); ++b) {
    EXPECT_TRUE(hierarchy.BucketLive(b));
    EXPECT_EQ(hierarchy.bucket_unlabelled(b),
              hierarchy.BucketRange(b).second - hierarchy.BucketRange(b).first);
  }

  ShortlistPruner pruner{ShortlistOptions{}};
  pruner.Reset(kObjects, kAnnotators);
  pruner.BeginIteration(cache);

  // All live tiles start stale.
  std::vector<std::pair<size_t, size_t>> tiles;
  std::vector<Action> reps;
  hierarchy.CollectStaleReps(cache, /*train_steps=*/0, &tiles, &reps);
  EXPECT_EQ(tiles.size(), hierarchy.num_buckets() * hierarchy.num_groups());
  EXPECT_TRUE(std::isinf(
      hierarchy.TileBound(0, 0, cache, pruner, /*train_steps=*/0, 0.0)));

  constexpr double kRepQ = 0.25;
  hierarchy.RecordRep(0, 0, kRepQ, cache, /*train_steps=*/0, &pruner);
  const double bound =
      hierarchy.TileBound(0, 0, cache, pruner, /*train_steps=*/0, 0.0);
  EXPECT_FALSE(std::isinf(bound));
  // No drift or elapsed steps: the bound is q + alpha * (bucket + group
  // width) + margin, which must cover the representative itself.
  EXPECT_GE(bound, kRepQ);
  // A bonus shifts the bound additively.
  EXPECT_DOUBLE_EQ(
      hierarchy.TileBound(0, 0, cache, pruner, /*train_steps=*/0, 0.5),
      bound + 0.5);
  // BucketBound is the max over live groups; with only tile (0,0)
  // recorded the other groups are still infinite.
  EXPECT_TRUE(std::isinf(
      hierarchy.BucketBound(0, cache, pruner, /*train_steps=*/0, 0.0)));

  tiles.clear();
  reps.clear();
  hierarchy.CollectStaleReps(cache, /*train_steps=*/0, &tiles, &reps);
  EXPECT_EQ(tiles.size(),
            hierarchy.num_buckets() * hierarchy.num_groups() - 1);

  // A full cache rebuild resets the drift origins: the next iteration
  // must drop every record.
  cache.Invalidate();
  cache.Sync(s.View());
  cache.RefreshBucketBoxes();
  pruner.BeginIteration(cache);
  hierarchy.BeginIteration(cache, s.labelled, s.affordable);
  EXPECT_TRUE(std::isinf(
      hierarchy.TileBound(0, 0, cache, pruner, /*train_steps=*/0, 0.0)));
}

// Liveness: labelled objects and unaffordable annotators drop out of the
// tallies, and a fully labelled bucket / fully unaffordable group goes
// dead (the descent never expands or bounds it).
TEST(BucketHierarchyTest, LivenessTracksLabelsAndAffordability) {
  Scenario s;
  ScoreCache cache;
  constexpr size_t kBucket = 8;
  cache.ConfigureObjectBuckets(kBucket);
  cache.Sync(s.View());
  cache.RefreshBucketBoxes();

  HierarchyOptions options;
  options.object_bucket = kBucket;
  options.annotator_group = 4;
  BucketHierarchy hierarchy;
  hierarchy.Reset(kObjects, kAnnotators, options);

  for (size_t i = 0; i < kBucket; ++i) s.labelled[i] = true;  // Bucket 0.
  s.labelled[kBucket] = true;  // One object of bucket 1.
  for (size_t j = 8; j < kAnnotators; ++j) s.affordable[j] = false;  // Grp 2.
  hierarchy.BeginIteration(cache, s.labelled, s.affordable);

  EXPECT_FALSE(hierarchy.BucketLive(0));
  EXPECT_TRUE(hierarchy.BucketLive(1));
  EXPECT_EQ(hierarchy.bucket_unlabelled(1), kBucket - 1);
  EXPECT_TRUE(hierarchy.GroupLive(0));
  EXPECT_FALSE(hierarchy.GroupLive(2));
}

}  // namespace
}  // namespace crowdrl::rl
