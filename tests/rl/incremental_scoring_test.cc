// The incremental scoring engine's contract (ScoreCache + DqnAgent):
//  - the cached path is bit-identical to the naive featurize-every-pair
//    path — features, Q scores, and selected assignments — at every
//    iteration of a randomized run, including across checkpoint/resume;
//  - dirty tracking refreshes exactly the blocks whose inputs changed;
//  - the factorized Q head (opt-in) agrees with the exact forward to
//    within a small ULP bound.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/serializer.h"
#include "obs/metrics.h"
#include "rl/dqn_agent.h"
#include "rl/score_cache.h"
#include "util/random.h"

namespace crowdrl::rl {
namespace {

constexpr size_t kObjects = 64;
constexpr size_t kAnnotators = 8;
constexpr int kClasses = 4;

/// A mutable workload the tests drive through answer arrivals, quality /
/// classifier refreshes, labelling progress, and budget decay — the events
/// that dirty ScoreCache blocks in a real run.
struct Scenario {
  crowd::AnswerLog answers{kObjects, kAnnotators};
  std::vector<double> costs;
  std::vector<double> qualities;
  std::vector<bool> is_expert;
  std::vector<bool> labelled;
  std::vector<bool> affordable;
  Matrix class_probs{kObjects, static_cast<size_t>(kClasses)};
  size_t probs_version = 0;
  bool have_probs = false;
  double budget_fraction = 1.0;
  double fraction_labelled = 0.0;
  Rng rng{4211};

  Scenario() {
    for (size_t j = 0; j < kAnnotators; ++j) {
      bool expert = j + 1 == kAnnotators;
      costs.push_back(expert ? 8.0 : 1.0 + 0.25 * static_cast<double>(j));
      qualities.push_back(0.55 + 0.04 * static_cast<double>(j));
      is_expert.push_back(expert);
      affordable.push_back(true);
    }
    labelled.assign(kObjects, false);
  }

  void RefreshProbs() {
    for (size_t i = 0; i < kObjects; ++i) {
      double sum = 0.0;
      double* row = class_probs.Row(i);
      for (int c = 0; c < kClasses; ++c) {
        row[c] = 0.05 + rng.Uniform();
        sum += row[c];
      }
      for (int c = 0; c < kClasses; ++c) row[c] /= sum;
    }
    ++probs_version;
    have_probs = true;
  }

  StateView View(bool versioned = true) const {
    StateView view;
    view.answers = &answers;
    view.num_classes = kClasses;
    view.annotator_costs = &costs;
    view.annotator_qualities = &qualities;
    view.annotator_is_expert = &is_expert;
    view.class_probs = have_probs ? &class_probs : nullptr;
    view.class_probs_version = have_probs && versioned ? probs_version : 0;
    view.labelled = &labelled;
    view.budget_fraction_remaining = budget_fraction;
    view.fraction_labelled = fraction_labelled;
    view.max_cost = 8.0;
    return view;
  }
};

DqnAgentOptions MakeOptions(bool incremental) {
  DqnAgentOptions options;
  options.seed = 29;
  options.q.seed = 31;
  options.incremental = incremental;
  options.min_replay_before_training = 16;
  options.train_batch = 8;
  options.train_steps_per_observe = 2;
  // Most tests here compare the cached path bitwise against from-scratch
  // featurization; the factorized head (only ULP-close) is opted back in
  // by the FactorizedQHeadTest suite.
  options.factorized_q_head = false;
  return options;
}

void ExpectScoredBitIdentical(const ScoredCandidates& got,
                              const ScoredCandidates& want, int iteration) {
  ASSERT_EQ(got.actions.size(), want.actions.size()) << "iter " << iteration;
  for (size_t i = 0; i < got.actions.size(); ++i) {
    ASSERT_EQ(got.actions[i].object, want.actions[i].object)
        << "iter " << iteration << " candidate " << i;
    ASSERT_EQ(got.actions[i].annotator, want.actions[i].annotator)
        << "iter " << iteration << " candidate " << i;
    ASSERT_EQ(got.scores[i], want.scores[i])
        << "iter " << iteration << " candidate " << i;
  }
  ASSERT_EQ(got.features.rows(), want.features.rows());
  ASSERT_EQ(got.features.cols(), want.features.cols());
  for (size_t i = 0; i < got.features.size(); ++i) {
    ASSERT_EQ(got.features.data()[i], want.features.data()[i])
        << "iter " << iteration << " feature element " << i;
  }
}

DqnAgent RoundTrip(const DqnAgent& agent, DqnAgentOptions options) {
  io::Writer writer;
  agent.SaveState(&writer);
  DqnAgent fresh(std::move(options));
  io::Reader reader(writer.bytes());
  EXPECT_TRUE(fresh.LoadState(&reader).ok());
  return fresh;
}

// Satellite property test: a randomized run (random k, inference-style
// refreshes, budget exhaustion, checkpoint/resume mid-run) in which the
// cached scorer's features, Q scores, and chosen assignments must be
// bit-identical to the from-scratch naive scorer at every iteration.
TEST(IncrementalScoringTest, CachedAgentMatchesNaiveOverRandomizedRun) {
  Scenario s;
  DqnAgent naive(MakeOptions(/*incremental=*/false));
  DqnAgent cached(MakeOptions(/*incremental=*/true));
  naive.BeginEpisode(kObjects, kAnnotators);
  cached.BeginEpisode(kObjects, kAnnotators);

  for (int iter = 0; iter < 24; ++iter) {
    // Inference-style refresh: new classifier beliefs and a quality nudge.
    if (iter % 3 == 1) {
      s.RefreshProbs();
      s.qualities[static_cast<size_t>(s.rng.UniformInt(
          static_cast<int>(kAnnotators)))] = s.rng.Uniform(0.3, 0.95);
    }
    // Labelling progress.
    if (iter % 4 == 2) {
      size_t i = static_cast<size_t>(
          s.rng.UniformInt(static_cast<int>(kObjects)));
      if (!s.labelled[i]) {
        s.labelled[i] = true;
        s.fraction_labelled += 1.0 / static_cast<double>(kObjects);
      }
    }
    // Budget decay, down to exhaustion of the expensive annotators.
    s.budget_fraction = std::max(0.0, s.budget_fraction - 0.04);
    if (iter == 15) s.affordable[kAnnotators - 1] = false;
    if (iter == 19) s.affordable[0] = false;

    // Every 5th iteration presents the view unversioned, exercising the
    // conservative always-refresh classifier path.
    StateView view = s.View(/*versioned=*/iter % 5 != 0);
    int k = 1 + s.rng.UniformInt(2);
    int picks = 1 + s.rng.UniformInt(3);

    ScoredCandidates from_naive = naive.Score(view, s.affordable);
    ScoredCandidates from_cached = cached.Score(view, s.affordable);
    ExpectScoredBitIdentical(from_cached, from_naive, iter);

    std::vector<size_t> chosen_naive;
    std::vector<size_t> chosen_cached;
    std::vector<Assignment> assign_naive = PickTopKSumAssignments(
        from_naive, k, picks, kObjects, &chosen_naive);
    std::vector<Assignment> assign_cached = PickTopKSumAssignments(
        from_cached, k, picks, kObjects, &chosen_cached);
    ASSERT_EQ(chosen_naive, chosen_cached) << "iter " << iter;
    ASSERT_EQ(assign_naive.size(), assign_cached.size());
    for (size_t a = 0; a < assign_naive.size(); ++a) {
      ASSERT_EQ(assign_naive[a].object, assign_cached[a].object);
      ASSERT_EQ(assign_naive[a].annotators, assign_cached[a].annotators);
    }
    naive.Commit(from_naive, chosen_naive);
    cached.Commit(from_cached, chosen_cached);

    // Execute the (identical) assignments against the shared log.
    for (const Assignment& assignment : assign_naive) {
      for (int j : assignment.annotators) {
        s.answers.Record(assignment.object, j, s.rng.UniformInt(kClasses));
      }
    }

    double reward = s.rng.Uniform();
    StateView next = s.View(/*versioned=*/iter % 5 != 0);
    naive.Observe(reward, next, s.affordable, /*terminal=*/false);
    cached.Observe(reward, next, s.affordable, /*terminal=*/false);

    // Mid-run checkpoint into fresh agents: the cached agent's ScoreCache
    // is not serialized and must rebuild to the same bits.
    if (iter == 11) {
      naive = RoundTrip(naive, MakeOptions(false));
      cached = RoundTrip(cached, MakeOptions(true));
    }
  }
}

TEST(ScoreCacheTest, AssembledRowsMatchFeaturizerBitwise) {
  Scenario s;
  s.RefreshProbs();
  s.answers.Record(0, 1, 2);
  s.answers.Record(0, 3, 2);
  s.answers.Record(5, 0, 1);
  StateView view = s.View();

  ScoreCache cache;
  cache.Sync(view);
  StateFeaturizer featurizer;
  std::vector<double> want;
  double got[StateFeaturizer::kFeatureDim];
  for (size_t i = 0; i < kObjects; ++i) {
    for (size_t j = 0; j < kAnnotators; ++j) {
      featurizer.Featurize(view, static_cast<int>(i), static_cast<int>(j),
                           &want);
      cache.AssembleRowInto(static_cast<int>(i), static_cast<int>(j), got);
      for (size_t f = 0; f < StateFeaturizer::kFeatureDim; ++f) {
        ASSERT_EQ(got[f], want[f]) << "pair (" << i << ", " << j
                                   << ") feature " << f;
      }
    }
  }
}

TEST(ScoreCacheTest, DirtyTrackingRefreshesOnlyChangedBlocks) {
  Scenario s;
  s.RefreshProbs();
  ScoreCache cache;
  cache.Sync(s.View());
  EXPECT_TRUE(cache.last_sync_stats().full_rebuild);

  // Unchanged view: nothing recomputes.
  cache.Sync(s.View());
  EXPECT_FALSE(cache.last_sync_stats().full_rebuild);
  EXPECT_EQ(cache.last_sync_stats().history_refreshes, 0u);
  EXPECT_EQ(cache.last_sync_stats().classifier_refreshes, 0u);
  EXPECT_EQ(cache.last_sync_stats().annotator_refreshes, 0u);

  // Answers dirty exactly the touched objects (deduplicated).
  size_t object_version = cache.object_blocks_version();
  s.answers.Record(3, 0, 1);
  s.answers.Record(3, 1, 2);
  s.answers.Record(7, 0, 0);
  cache.Sync(s.View());
  EXPECT_EQ(cache.last_sync_stats().history_refreshes, 2u);
  EXPECT_EQ(cache.last_sync_stats().annotator_refreshes, 0u);
  EXPECT_GT(cache.object_blocks_version(), object_version);

  // A quality change dirties exactly that annotator.
  size_t annotator_version = cache.annotator_blocks_version();
  s.qualities[2] = 0.7;
  cache.Sync(s.View());
  EXPECT_EQ(cache.last_sync_stats().annotator_refreshes, 1u);
  EXPECT_EQ(cache.last_sync_stats().history_refreshes, 0u);
  EXPECT_GT(cache.annotator_blocks_version(), annotator_version);

  // A class_probs refresh dirties every object's classifier columns.
  s.RefreshProbs();
  cache.Sync(s.View());
  EXPECT_EQ(cache.last_sync_stats().classifier_refreshes, kObjects);

  // An unversioned view refreshes the classifier columns on every Sync.
  cache.Sync(s.View(/*versioned=*/false));
  EXPECT_EQ(cache.last_sync_stats().classifier_refreshes, kObjects);
}

// Satellite: the cumulative sync statistics behind the
// crowdrl.scorecache.* metrics — totals accumulate across Syncs, hits and
// misses partition the consulted blocks exactly, and the counters reset
// on Invalidate (and therefore across BeginEpisode / LoadState).
TEST(ScoreCacheTest, CumulativeStatsAccumulateAndPartitionExactly) {
  Scenario s;
  s.RefreshProbs();
  ScoreCache cache;
  EXPECT_EQ(cache.cumulative_stats().syncs, 0u);

  cache.Sync(s.View());       // Full rebuild.
  cache.Sync(s.View());       // Clean: all hits.
  s.answers.Record(3, 0, 1);  // Dirties one object's history part.
  s.answers.Record(6, 1, 2);  // And another.
  s.qualities[2] = 0.8;       // Dirties one annotator block.
  cache.Sync(s.View());

  const ScoreCache::CumulativeStats& stats = cache.cumulative_stats();
  EXPECT_EQ(stats.syncs, 3u);
  EXPECT_EQ(stats.full_rebuilds, 1u);
  EXPECT_EQ(stats.objects_dirtied, kObjects + 2);
  const size_t consulted_per_sync = 2 * kObjects + kAnnotators;
  EXPECT_EQ(stats.block_hits + stats.block_misses,
            stats.syncs * consulted_per_sync);
  // Sync 1 misses everything, sync 2 nothing, sync 3 exactly 2 history
  // parts + 1 annotator block.
  EXPECT_EQ(stats.block_misses, consulted_per_sync + 3);
  EXPECT_EQ(stats.blocks_rebuilt, stats.block_misses);

  cache.Invalidate();
  EXPECT_EQ(cache.cumulative_stats().syncs, 0u);
  EXPECT_EQ(cache.cumulative_stats().block_hits, 0u);
  EXPECT_EQ(cache.cumulative_stats().block_misses, 0u);
  EXPECT_EQ(cache.cumulative_stats().objects_dirtied, 0u);
  EXPECT_EQ(cache.cumulative_stats().full_rebuilds, 0u);
}

TEST(IncrementalScoringTest, CumulativeStatsResetAcrossEpisodeAndRestore) {
  Scenario s;
  s.RefreshProbs();
  DqnAgent agent(MakeOptions(/*incremental=*/true));
  agent.BeginEpisode(kObjects, kAnnotators);
  agent.Score(s.View(), s.affordable);
  s.answers.Record(1, 0, 2);
  agent.Score(s.View(), s.affordable);
  ASSERT_EQ(agent.score_cache().cumulative_stats().syncs, 2u);
  ASSERT_GT(agent.score_cache().cumulative_stats().block_hits, 0u);

  // A new episode must not inherit the previous episode's totals.
  agent.BeginEpisode(kObjects, kAnnotators);
  EXPECT_EQ(agent.score_cache().cumulative_stats().syncs, 0u);
  EXPECT_EQ(agent.score_cache().cumulative_stats().block_hits, 0u);

  // Neither must an agent restored from a checkpoint.
  agent.Score(s.View(), s.affordable);
  ASSERT_EQ(agent.score_cache().cumulative_stats().syncs, 1u);
  DqnAgent restored = RoundTrip(agent, MakeOptions(/*incremental=*/true));
  EXPECT_EQ(restored.score_cache().cumulative_stats().syncs, 0u);
  EXPECT_EQ(restored.score_cache().cumulative_stats().block_misses, 0u);
}

uint64_t OrderedBits(double x) {
  uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return (u & 0x8000000000000000ULL) ? ~u : (u | 0x8000000000000000ULL);
}

uint64_t UlpDistance(double a, double b) {
  uint64_t ua = OrderedBits(a);
  uint64_t ub = OrderedBits(b);
  return ua > ub ? ua - ub : ub - ua;
}

// Regrouping the first-layer sum changes the accumulation order, so the
// factorized head is pinned to ULP-level (not bitwise) agreement; see
// DESIGN.md "Numerics & kernels".
constexpr uint64_t kFactorizedUlpBound = 512;
constexpr double kFactorizedAbsBound = 1e-9;

void ExpectUlpClose(const std::vector<double>& got,
                    const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(UlpDistance(got[i], want[i]) <= kFactorizedUlpBound ||
                std::fabs(got[i] - want[i]) <= kFactorizedAbsBound)
        << what << " value " << i << ": " << got[i] << " vs " << want[i];
  }
}

TEST(FactorizedQHeadTest, MatchesExactForwardWithinUlps) {
  Scenario s;
  s.RefreshProbs();
  s.answers.Record(0, 1, 2);
  s.answers.Record(4, 0, 1);
  StateView view = s.View();

  ScoreCache cache;
  cache.Sync(view);
  std::vector<Action> pairs;
  for (size_t i = 0; i < kObjects; ++i) {
    for (size_t j = 0; j < kAnnotators; ++j) {
      pairs.push_back({static_cast<int>(i), static_cast<int>(j)});
    }
  }
  Matrix features(pairs.size(), StateFeaturizer::kFeatureDim);
  for (size_t p = 0; p < pairs.size(); ++p) {
    cache.AssembleRowInto(pairs[p].object, pairs[p].annotator,
                          features.Row(p));
  }
  FeatureBlocks blocks;
  blocks.object_blocks = &cache.object_blocks();
  blocks.annotator_blocks = &cache.annotator_blocks();
  blocks.global_block = cache.global_block();
  blocks.object_version = cache.object_blocks_version();
  blocks.annotator_version = cache.annotator_blocks_version();

  QNetworkOptions q_options;
  q_options.seed = 77;
  QNetwork net(q_options);
  ExpectUlpClose(net.PredictBatchFactorized(blocks, pairs, false),
                 net.PredictBatch(features), "online");
  ExpectUlpClose(net.PredictBatchFactorized(blocks, pairs, true),
                 net.TargetPredictBatch(features), "target");
  // Second call serves from the cached partials — must be unchanged.
  ExpectUlpClose(net.PredictBatchFactorized(blocks, pairs, false),
                 net.PredictBatch(features), "cached partials");

  // Parameter updates must invalidate the cached partials.
  Rng rng(5);
  std::vector<Transition> transitions;
  for (int t = 0; t < 8; ++t) {
    Transition tr;
    tr.features = features.RowVector(static_cast<size_t>(t));
    tr.reward = rng.Uniform();
    tr.next_max_q = rng.Uniform();
    tr.terminal = false;
    transitions.push_back(std::move(tr));
  }
  std::vector<const Transition*> batch;
  for (const Transition& tr : transitions) batch.push_back(&tr);
  for (int step = 0; step < 30; ++step) net.TrainBatch(batch);
  ExpectUlpClose(net.PredictBatchFactorized(blocks, pairs, false),
                 net.PredictBatch(features), "after training");
  ExpectUlpClose(net.PredictBatchFactorized(blocks, pairs, true),
                 net.TargetPredictBatch(features), "target after sync");

  // Block updates (new answers, new qualities) must refresh the partials.
  s.answers.Record(9, 2, 3);
  s.qualities[1] = 0.9;
  cache.Sync(s.View());
  for (size_t p = 0; p < pairs.size(); ++p) {
    cache.AssembleRowInto(pairs[p].object, pairs[p].annotator,
                          features.Row(p));
  }
  blocks.object_version = cache.object_blocks_version();
  blocks.annotator_version = cache.annotator_blocks_version();
  ExpectUlpClose(net.PredictBatchFactorized(blocks, pairs, false),
                 net.PredictBatch(features), "after block refresh");
}

// The factorized agent must fall back to the exact path when a feature
// mask is set (masked rows cannot be block-decomposed), reproducing the
// exact agent's scores bitwise.
TEST(FactorizedQHeadTest, FeatureMaskFallsBackToExactPath) {
  Scenario s;
  s.RefreshProbs();
  std::vector<bool> mask(StateFeaturizer::kFeatureDim, true);
  mask[4] = false;
  mask[5] = false;

  DqnAgentOptions exact_options = MakeOptions(/*incremental=*/true);
  exact_options.feature_mask = mask;
  DqnAgentOptions fact_options = exact_options;
  fact_options.factorized_q_head = true;

  DqnAgent exact(exact_options);
  DqnAgent factorized(fact_options);
  exact.BeginEpisode(kObjects, kAnnotators);
  factorized.BeginEpisode(kObjects, kAnnotators);
  ScoredCandidates want = exact.Score(s.View(), s.affordable);
  ScoredCandidates got = factorized.Score(s.View(), s.affordable);
  ASSERT_EQ(got.scores.size(), want.scores.size());
  for (size_t i = 0; i < got.scores.size(); ++i) {
    ASSERT_EQ(got.scores[i], want.scores[i]);  // Bitwise.
  }
}

TEST(FactorizedQHeadTest, AgentSelectsValidAssignments) {
  Scenario s;
  s.RefreshProbs();
  DqnAgentOptions options = MakeOptions(/*incremental=*/true);
  options.factorized_q_head = true;
  DqnAgent agent(options);
  agent.BeginEpisode(kObjects, kAnnotators);
  for (int iter = 0; iter < 4; ++iter) {
    std::vector<Assignment> assignments =
        agent.SelectBatch(s.View(), /*k=*/2, /*num_objects_to_pick=*/3,
                          s.affordable);
    ASSERT_FALSE(assignments.empty());
    for (const Assignment& assignment : assignments) {
      for (int j : assignment.annotators) {
        s.answers.Record(assignment.object, j, s.rng.UniformInt(kClasses));
      }
    }
    agent.Observe(s.rng.Uniform(), s.View(), s.affordable,
                  /*terminal=*/false);
  }
}

// Satellite pin: the factorized bootstrap must not assemble dense feature
// rows — PredictBatchFactorized never reads them, so ObservePerPair skips
// the per-row assembly entirely (the cache Sync still runs).
TEST(FactorizedQHeadTest, BootstrapSkipsDenseAssembly) {
  for (bool factorized : {true, false}) {
    Scenario s;
    s.RefreshProbs();
    DqnAgentOptions options = MakeOptions(/*incremental=*/true);
    options.factorized_q_head = factorized;
    options.prune = false;
    DqnAgent agent(options);
    agent.BeginEpisode(kObjects, kAnnotators);
    std::vector<Assignment> assignments = agent.SelectBatch(
        s.View(), /*k=*/2, /*num_objects_to_pick=*/3, s.affordable);
    ASSERT_FALSE(assignments.empty());
    for (const Assignment& assignment : assignments) {
      for (int j : assignment.annotators) {
        s.answers.Record(assignment.object, j, s.rng.UniformInt(kClasses));
      }
    }
    uint64_t before = agent.rows_featurized();
    agent.Observe(0.5, s.View(), s.affordable, /*terminal=*/false);
    uint64_t delta = agent.rows_featurized() - before;
    if (factorized) {
      EXPECT_EQ(delta, 0u) << "factorized bootstrap assembled dense rows";
    } else {
      EXPECT_GT(delta, 0u) << "exact bootstrap must featurize candidates";
    }
  }
}

uint64_t CounterValue(const obs::MetricsSnapshot& snapshot,
                      const std::string& name) {
  for (const auto& counter : snapshot.counters) {
    if (counter.name == name) return counter.value;
  }
  return 0;
}

// Satellite pin for the RecordSyncMetrics rewrite: the exported hit/miss
// counters must follow the cache's own CumulativeStats — a full rebuild is
// 2n+m misses and zero hits (the old code credited every sync, rebuilds
// included, with `consulted = 2n+m` and clamped the overflow away).
TEST(IncrementalScoringTest, SyncMetricsMatchCacheCumulativeStats) {
  Scenario s;
  s.RefreshProbs();
  DqnAgent agent(MakeOptions(/*incremental=*/true));
  agent.BeginEpisode(kObjects, kAnnotators);

  obs::SetEnabled(true);
  obs::MetricsSnapshot before = obs::MetricsRegistry::Get().Snapshot();
  agent.Score(s.View(), s.affordable);  // Full rebuild.
  s.answers.Record(3, 1, 2);
  agent.Score(s.View(), s.affordable);  // Incremental: one object dirty.
  s.qualities[2] = 0.8;
  agent.Score(s.View(), s.affordable);  // Incremental: one annotator dirty.
  obs::MetricsSnapshot after = obs::MetricsRegistry::Get().Snapshot();
  obs::SetEnabled(false);

  const ScoreCache::CumulativeStats& cum =
      agent.score_cache().cumulative_stats();
  constexpr size_t kConsultedPerSync = 2 * kObjects + kAnnotators;
  // The cache's own accounting is self-consistent across rebuild +
  // incremental syncs...
  ASSERT_EQ(cum.syncs, 3u);
  ASSERT_EQ(cum.full_rebuilds, 1u);
  EXPECT_EQ(cum.block_hits + cum.block_misses,
            cum.syncs * kConsultedPerSync);
  // ...the rebuild contributed zero hits, so hits stay strictly below the
  // two incremental syncs' consultation budget...
  EXPECT_LE(cum.block_hits, 2 * kConsultedPerSync);
  EXPECT_GT(cum.block_hits, 0u);
  // ...and the exported counter deltas equal the cache totals exactly
  // (this agent is the only one scoring while obs is on).
  EXPECT_EQ(CounterValue(after, "crowdrl.scorecache.syncs") -
                CounterValue(before, "crowdrl.scorecache.syncs"),
            cum.syncs);
  EXPECT_EQ(CounterValue(after, "crowdrl.scorecache.block_hits") -
                CounterValue(before, "crowdrl.scorecache.block_hits"),
            cum.block_hits);
  EXPECT_EQ(CounterValue(after, "crowdrl.scorecache.block_misses") -
                CounterValue(before, "crowdrl.scorecache.block_misses"),
            cum.block_misses);
  EXPECT_EQ(CounterValue(after, "crowdrl.scorecache.full_rebuilds") -
                CounterValue(before, "crowdrl.scorecache.full_rebuilds"),
            cum.full_rebuilds);
}

void TrainNet(QNetwork* net, const Matrix& features, int steps, Rng* rng) {
  std::vector<Transition> transitions;
  for (int t = 0; t < 8; ++t) {
    Transition tr;
    tr.features = features.RowVector(static_cast<size_t>(t));
    tr.reward = rng->Uniform();
    tr.next_max_q = rng->Uniform();
    tr.terminal = false;
    transitions.push_back(std::move(tr));
  }
  std::vector<const Transition*> batch;
  for (const Transition& tr : transitions) batch.push_back(&tr);
  for (int step = 0; step < steps; ++step) net->TrainBatch(batch);
}

// Satellite coverage: the factorized partial-product caches must be
// recomputed after every way the underlying parameters can change —
// LoadState, SetFlatParameters, and both target-sync flavours (periodic
// hard sync and per-step soft tau) — staying in ULP lockstep with the
// exact forward throughout.
TEST(FactorizedQHeadTest, RecomputesPartialsAfterParameterEvents) {
  Scenario s;
  s.RefreshProbs();
  s.answers.Record(1, 2, 0);
  StateView view = s.View();

  ScoreCache cache;
  cache.Sync(view);
  std::vector<Action> pairs;
  for (size_t i = 0; i < kObjects; ++i) {
    for (size_t j = 0; j < kAnnotators; ++j) {
      pairs.push_back({static_cast<int>(i), static_cast<int>(j)});
    }
  }
  Matrix features(pairs.size(), StateFeaturizer::kFeatureDim);
  for (size_t p = 0; p < pairs.size(); ++p) {
    cache.AssembleRowInto(pairs[p].object, pairs[p].annotator,
                          features.Row(p));
  }
  FeatureBlocks blocks;
  blocks.object_blocks = &cache.object_blocks();
  blocks.annotator_blocks = &cache.annotator_blocks();
  blocks.global_block = cache.global_block();
  blocks.object_version = cache.object_blocks_version();
  blocks.annotator_version = cache.annotator_blocks_version();
  Rng rng(97);

  // Periodic hard target sync: warm the caches, then train exactly up to
  // the sync boundary — the target partials must follow the swap.
  {
    QNetworkOptions q_options;
    q_options.seed = 41;
    q_options.target_sync_period = 4;
    QNetwork net(q_options);
    ExpectUlpClose(net.PredictBatchFactorized(blocks, pairs, true),
                   net.TargetPredictBatch(features), "warm target");
    TrainNet(&net, features, 4, &rng);
    ExpectUlpClose(net.PredictBatchFactorized(blocks, pairs, true),
                   net.TargetPredictBatch(features),
                   "target after periodic sync");
    ExpectUlpClose(net.PredictBatchFactorized(blocks, pairs, false),
                   net.PredictBatch(features), "online after training");
  }

  // Soft-tau sync: the target moves a little on every train step.
  {
    QNetworkOptions q_options;
    q_options.seed = 43;
    q_options.soft_tau = 0.25;
    QNetwork net(q_options);
    ExpectUlpClose(net.PredictBatchFactorized(blocks, pairs, true),
                   net.TargetPredictBatch(features), "warm soft target");
    TrainNet(&net, features, 1, &rng);
    ExpectUlpClose(net.PredictBatchFactorized(blocks, pairs, true),
                   net.TargetPredictBatch(features),
                   "target after soft-tau step");
  }

  // SetFlatParameters (cross-training transfer) rewrites the online net
  // and resets the target; both cached partials are stale afterwards.
  {
    QNetworkOptions q_options;
    q_options.seed = 47;
    QNetwork net(q_options);
    ExpectUlpClose(net.PredictBatchFactorized(blocks, pairs, false),
                   net.PredictBatch(features), "warm before transfer");
    std::vector<double> params = net.FlatParameters();
    for (double& p : params) p += 1e-3;
    net.SetFlatParameters(params);
    ExpectUlpClose(net.PredictBatchFactorized(blocks, pairs, false),
                   net.PredictBatch(features), "online after transfer");
    ExpectUlpClose(net.PredictBatchFactorized(blocks, pairs, true),
                   net.TargetPredictBatch(features), "target after transfer");
  }

  // LoadState replaces every parameter of an already-warm network.
  {
    QNetworkOptions q_options;
    q_options.seed = 53;
    QNetwork source(q_options);
    TrainNet(&source, features, 7, &rng);
    QNetworkOptions sink_options = q_options;
    sink_options.seed = 59;  // Different init: params genuinely change.
    QNetwork sink(sink_options);
    ExpectUlpClose(sink.PredictBatchFactorized(blocks, pairs, false),
                   sink.PredictBatch(features), "warm before restore");
    io::Writer writer;
    source.SaveState(&writer);
    io::Reader reader(writer.bytes());
    ASSERT_TRUE(sink.LoadState(&reader).ok());
    ExpectUlpClose(sink.PredictBatchFactorized(blocks, pairs, false),
                   sink.PredictBatch(features), "online after restore");
    ExpectUlpClose(sink.PredictBatchFactorized(blocks, pairs, true),
                   sink.TargetPredictBatch(features), "target after restore");
    // And the restored factorized forward agrees with the source's.
    ExpectUlpClose(sink.PredictBatchFactorized(blocks, pairs, false),
                   source.PredictBatch(features), "restore vs source");
  }
}

}  // namespace
}  // namespace crowdrl::rl
