#include "rl/replay_buffer.h"

#include <gtest/gtest.h>

namespace crowdrl::rl {
namespace {

Transition MakeTransition(double reward) {
  return Transition{{reward}, reward, 0.0, false};
}

TEST(ReplayBufferTest, FillsToCapacityThenEvictsOldest) {
  ReplayBuffer buffer(3);
  for (int i = 0; i < 3; ++i) buffer.Add(MakeTransition(i));
  EXPECT_EQ(buffer.size(), 3u);
  buffer.Add(MakeTransition(99));
  EXPECT_EQ(buffer.size(), 3u);
  // Oldest (reward 0) was evicted.
  bool found_zero = false;
  bool found_99 = false;
  for (size_t i = 0; i < buffer.size(); ++i) {
    if (buffer.at(i).reward == 0.0) found_zero = true;
    if (buffer.at(i).reward == 99.0) found_99 = true;
  }
  EXPECT_FALSE(found_zero);
  EXPECT_TRUE(found_99);
}

TEST(ReplayBufferTest, RingWrapsRepeatedly) {
  ReplayBuffer buffer(2);
  for (int i = 0; i < 10; ++i) buffer.Add(MakeTransition(i));
  EXPECT_EQ(buffer.size(), 2u);
  double sum = buffer.at(0).reward + buffer.at(1).reward;
  EXPECT_DOUBLE_EQ(sum, 8.0 + 9.0);
}

TEST(ReplayBufferTest, WraparoundOverwritesOldestFirst) {
  // After the ring is full, the write cursor walks slot by slot, always
  // replacing the oldest surviving transition. Track the full contents
  // through two wraps of a capacity-3 buffer.
  ReplayBuffer buffer(3);
  auto contents = [&buffer] {
    std::vector<double> out;
    for (size_t i = 0; i < buffer.size(); ++i) {
      out.push_back(buffer.at(i).reward);
    }
    return out;
  };
  for (int i = 0; i < 3; ++i) buffer.Add(MakeTransition(i));
  EXPECT_EQ(contents(), (std::vector<double>{0, 1, 2}));
  buffer.Add(MakeTransition(3));  // Evicts 0, the oldest.
  EXPECT_EQ(contents(), (std::vector<double>{3, 1, 2}));
  buffer.Add(MakeTransition(4));  // Evicts 1.
  EXPECT_EQ(contents(), (std::vector<double>{3, 4, 2}));
  buffer.Add(MakeTransition(5));  // Evicts 2.
  EXPECT_EQ(contents(), (std::vector<double>{3, 4, 5}));
  buffer.Add(MakeTransition(6));  // Second wrap: evicts 3 again.
  EXPECT_EQ(contents(), (std::vector<double>{6, 4, 5}));
}

TEST(ReplayBufferTest, SampleReturnsStoredTransitions) {
  ReplayBuffer buffer(8);
  for (int i = 0; i < 5; ++i) buffer.Add(MakeTransition(i));
  Rng rng(3);
  std::vector<const Transition*> sample = buffer.Sample(20, &rng);
  ASSERT_EQ(sample.size(), 20u);
  for (const Transition* t : sample) {
    EXPECT_GE(t->reward, 0.0);
    EXPECT_LE(t->reward, 4.0);
  }
}

TEST(ReplayBufferTest, SampleCoversBuffer) {
  ReplayBuffer buffer(4);
  for (int i = 0; i < 4; ++i) buffer.Add(MakeTransition(i));
  Rng rng(5);
  std::vector<bool> seen(4, false);
  for (const Transition* t : buffer.Sample(200, &rng)) {
    seen[static_cast<size_t>(t->reward)] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(ReplayBufferTest, ClearEmpties) {
  ReplayBuffer buffer(4);
  buffer.Add(MakeTransition(1));
  buffer.Clear();
  EXPECT_TRUE(buffer.empty());
  buffer.Add(MakeTransition(2));
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(ReplayBufferDeathTest, SamplingEmptyBufferAborts) {
  ReplayBuffer buffer(2);
  Rng rng(1);
  EXPECT_DEATH(buffer.Sample(1, &rng), "");
}

}  // namespace
}  // namespace crowdrl::rl
