// Double DQN variant (Section IV-B notes DQN variants [38] drop in).

#include <gtest/gtest.h>

#include "rl/dqn_agent.h"

namespace crowdrl::rl {
namespace {

struct Fixture {
  crowd::AnswerLog answers{4, 3};
  std::vector<double> costs = {1.0, 1.0, 10.0};
  std::vector<double> qualities = {0.6, 0.7, 0.95};
  std::vector<bool> is_expert = {false, false, true};
  std::vector<bool> labelled = {false, false, false, false};
  std::vector<bool> affordable = {true, true, true};

  StateView View() {
    StateView view;
    view.answers = &answers;
    view.num_classes = 2;
    view.annotator_costs = &costs;
    view.annotator_qualities = &qualities;
    view.annotator_is_expert = &is_expert;
    view.labelled = &labelled;
    view.max_cost = 10.0;
    return view;
  }
};

TEST(DoubleDqnTest, FullSelectObserveCycleFillsReplay) {
  Fixture f;
  DqnAgentOptions options;
  options.q.double_dqn = true;
  options.seed = 3;
  DqnAgent agent(options);
  agent.BeginEpisode(4, 3);
  for (int round = 0; round < 5; ++round) {
    auto batch = agent.SelectBatch(f.View(), 2, 2, f.affordable);
    ASSERT_FALSE(batch.empty());
    agent.Observe(0.5, f.View(), f.affordable, /*terminal=*/false);
  }
  EXPECT_GE(agent.replay().size(), 10u);
}

TEST(DoubleDqnTest, MatchesVanillaBeforeNetworksDiverge) {
  // Before any training the online and target networks are identical, so
  // the Double DQN bootstrap (target at online argmax) equals the
  // vanilla max — both agents push identical transitions.
  Fixture f;
  DqnAgentOptions vanilla_options;
  vanilla_options.seed = 9;
  vanilla_options.train_steps_per_observe = 0;  // Keep nets in sync.
  DqnAgentOptions double_options = vanilla_options;
  double_options.q.double_dqn = true;

  DqnAgent vanilla(vanilla_options);
  DqnAgent doubled(double_options);
  vanilla.BeginEpisode(4, 3);
  doubled.BeginEpisode(4, 3);
  (void)vanilla.SelectBatch(f.View(), 1, 1, f.affordable);
  (void)doubled.SelectBatch(f.View(), 1, 1, f.affordable);
  vanilla.Observe(1.0, f.View(), f.affordable, false);
  doubled.Observe(1.0, f.View(), f.affordable, false);
  ASSERT_EQ(vanilla.replay().size(), doubled.replay().size());
  for (size_t i = 0; i < vanilla.replay().size(); ++i) {
    EXPECT_DOUBLE_EQ(vanilla.replay().at(i).next_max_q,
                     doubled.replay().at(i).next_max_q);
  }
}

}  // namespace
}  // namespace crowdrl::rl
