#include "rl/state.h"

#include <gtest/gtest.h>

namespace crowdrl::rl {
namespace {

struct StateFixture {
  crowd::AnswerLog answers{4, 3};
  std::vector<double> costs = {1.0, 1.0, 10.0};
  std::vector<double> qualities = {0.6, 0.7, 0.95};
  std::vector<bool> is_expert = {false, false, true};
  std::vector<bool> labelled = {false, false, false, false};
  Matrix class_probs;

  StateView View(bool with_probs) {
    StateView view;
    view.answers = &answers;
    view.num_classes = 2;
    view.annotator_costs = &costs;
    view.annotator_qualities = &qualities;
    view.annotator_is_expert = &is_expert;
    view.class_probs = with_probs ? &class_probs : nullptr;
    view.labelled = &labelled;
    view.budget_fraction_remaining = 0.5;
    view.fraction_labelled = 0.25;
    view.max_cost = 10.0;
    return view;
  }
};

TEST(StateFeaturizerTest, FeatureDimMatches) {
  StateFixture f;
  StateFeaturizer featurizer;
  std::vector<double> features = featurizer.Featurize(f.View(false), 0, 0);
  EXPECT_EQ(features.size(), StateFeaturizer::kFeatureDim);
}

TEST(StateFeaturizerTest, NoAnswersNoClassifierDefaults) {
  StateFixture f;
  StateFeaturizer featurizer;
  std::vector<double> v = featurizer.Featurize(f.View(false), 0, 0);
  EXPECT_DOUBLE_EQ(v[0], 1.0);   // Bias.
  EXPECT_DOUBLE_EQ(v[1], 0.0);   // No answers.
  EXPECT_DOUBLE_EQ(v[2], 0.0);   // No entropy.
  EXPECT_DOUBLE_EQ(v[4], 0.0);   // No classifier margin.
  EXPECT_DOUBLE_EQ(v[5], 1.0);   // Max classifier uncertainty.
  EXPECT_DOUBLE_EQ(v[10], 0.5);  // Budget fraction.
  EXPECT_DOUBLE_EQ(v[11], 0.25);
}

TEST(StateFeaturizerTest, AnswerHistoryFeatures) {
  StateFixture f;
  f.answers.Record(1, 0, 0);
  f.answers.Record(1, 1, 1);
  StateFeaturizer featurizer;
  std::vector<double> v = featurizer.Featurize(f.View(false), 1, 2);
  EXPECT_NEAR(v[1], 2.0 / 3.0, 1e-12);  // 2 of 3 annotators answered.
  EXPECT_NEAR(v[2], 1.0, 1e-9);         // Split answers: max entropy.
  EXPECT_NEAR(v[3], 0.5, 1e-12);        // Agreement 1/2.
}

TEST(StateFeaturizerTest, AnnotatorFeaturesDistinguishExpert) {
  StateFixture f;
  StateFeaturizer featurizer;
  std::vector<double> worker = featurizer.Featurize(f.View(false), 0, 0);
  std::vector<double> expert = featurizer.Featurize(f.View(false), 0, 2);
  EXPECT_DOUBLE_EQ(worker[9], 0.0);
  EXPECT_DOUBLE_EQ(expert[9], 1.0);
  EXPECT_LT(worker[7], expert[7]);   // Normalized cost.
  EXPECT_LT(worker[6], expert[6]);   // Quality.
}

TEST(StateFeaturizerTest, ClassifierFeaturesUseProbs) {
  StateFixture f;
  f.class_probs = Matrix::FromRows(
      {{0.9, 0.1}, {0.5, 0.5}, {0.6, 0.4}, {0.3, 0.7}});
  StateFeaturizer featurizer;
  std::vector<double> confident = featurizer.Featurize(f.View(true), 0, 0);
  std::vector<double> uncertain = featurizer.Featurize(f.View(true), 1, 0);
  EXPECT_NEAR(confident[4], 0.8, 1e-12);
  EXPECT_NEAR(uncertain[4], 0.0, 1e-12);
  EXPECT_LT(confident[5], uncertain[5]);
  EXPECT_NEAR(uncertain[5], 1.0, 1e-9);
}

TEST(StateFeaturizerTest, FeaturesAreBoundedForTypicalInputs) {
  StateFixture f;
  f.answers.Record(0, 0, 1);
  f.answers.Record(0, 1, 1);
  f.answers.Record(0, 2, 0);
  f.class_probs = Matrix(4, 2, 0.5);
  StateFeaturizer featurizer;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) {
      for (double v : featurizer.Featurize(f.View(true), i, j)) {
        EXPECT_GE(v, -0.01);
        EXPECT_LE(v, 1.5);
      }
    }
  }
}

}  // namespace
}  // namespace crowdrl::rl
