#include "rl/dqn_agent.h"

#include <set>

#include <gtest/gtest.h>

namespace crowdrl::rl {
namespace {

struct AgentFixture {
  crowd::AnswerLog answers{4, 3};
  std::vector<double> costs = {1.0, 1.0, 10.0};
  std::vector<double> qualities = {0.6, 0.7, 0.95};
  std::vector<bool> is_expert = {false, false, true};
  std::vector<bool> labelled = {false, false, false, false};
  std::vector<bool> affordable = {true, true, true};

  StateView View() {
    StateView view;
    view.answers = &answers;
    view.num_classes = 2;
    view.annotator_costs = &costs;
    view.annotator_qualities = &qualities;
    view.annotator_is_expert = &is_expert;
    view.labelled = &labelled;
    view.budget_fraction_remaining = 1.0;
    view.fraction_labelled = 0.0;
    view.max_cost = 10.0;
    return view;
  }

  DqnAgent MakeAgent(ExplorationMode mode = ExplorationMode::kUcb) {
    DqnAgentOptions options;
    options.exploration = mode;
    options.seed = 13;
    DqnAgent agent(options);
    agent.BeginEpisode(4, 3);
    return agent;
  }
};

TEST(DqnAgentTest, ScoreEnumeratesAllValidPairs) {
  AgentFixture f;
  DqnAgent agent = f.MakeAgent();
  ScoredCandidates c = agent.Score(f.View(), f.affordable);
  EXPECT_EQ(c.actions.size(), 12u);  // 4 objects x 3 annotators.
  EXPECT_EQ(c.scores.size(), 12u);
  EXPECT_EQ(c.features.rows(), 12u);
}

TEST(DqnAgentTest, LabelledObjectsAreMasked) {
  AgentFixture f;
  f.labelled[1] = true;
  DqnAgent agent = f.MakeAgent();
  ScoredCandidates c = agent.Score(f.View(), f.affordable);
  EXPECT_EQ(c.actions.size(), 9u);
  for (const Action& a : c.actions) EXPECT_NE(a.object, 1);
}

TEST(DqnAgentTest, AnsweredPairsAreMasked) {
  AgentFixture f;
  f.answers.Record(2, 1, 0);
  DqnAgent agent = f.MakeAgent();
  ScoredCandidates c = agent.Score(f.View(), f.affordable);
  EXPECT_EQ(c.actions.size(), 11u);
  for (const Action& a : c.actions) {
    EXPECT_FALSE(a.object == 2 && a.annotator == 1);
  }
}

TEST(DqnAgentTest, UnaffordableAnnotatorsAreMasked) {
  AgentFixture f;
  f.affordable[2] = false;
  DqnAgent agent = f.MakeAgent();
  ScoredCandidates c = agent.Score(f.View(), f.affordable);
  EXPECT_EQ(c.actions.size(), 8u);
  for (const Action& a : c.actions) EXPECT_NE(a.annotator, 2);
}

TEST(DqnAgentTest, SelectBatchAssignsKAnnotatorsPerObject) {
  AgentFixture f;
  DqnAgent agent = f.MakeAgent();
  std::vector<Assignment> batch =
      agent.SelectBatch(f.View(), 2, 3, f.affordable);
  ASSERT_EQ(batch.size(), 3u);
  std::set<int> objects;
  for (const Assignment& a : batch) {
    EXPECT_EQ(a.annotators.size(), 2u);
    objects.insert(a.object);
    std::set<int> distinct(a.annotators.begin(), a.annotators.end());
    EXPECT_EQ(distinct.size(), a.annotators.size());
  }
  EXPECT_EQ(objects.size(), 3u);
  EXPECT_EQ(agent.pending_transitions(), 6u);
}

TEST(DqnAgentTest, SelectBatchWithNoCandidatesReturnsEmpty) {
  AgentFixture f;
  f.labelled.assign(4, true);
  DqnAgent agent = f.MakeAgent();
  EXPECT_TRUE(agent.SelectBatch(f.View(), 2, 3, f.affordable).empty());
  EXPECT_EQ(agent.pending_transitions(), 0u);
}

TEST(DqnAgentTest, ObserveDrainsPendingIntoReplay) {
  AgentFixture f;
  DqnAgent agent = f.MakeAgent();
  agent.SelectBatch(f.View(), 2, 2, f.affordable);
  size_t pending = agent.pending_transitions();
  EXPECT_GT(pending, 0u);
  agent.Observe(1.0, f.View(), f.affordable, /*terminal=*/false);
  EXPECT_EQ(agent.pending_transitions(), 0u);
  EXPECT_EQ(agent.replay().size(), pending);
}

TEST(DqnAgentTest, ObservePerPairRequiresMatchingSize) {
  AgentFixture f;
  DqnAgent agent = f.MakeAgent();
  agent.SelectBatch(f.View(), 1, 1, f.affordable);
  EXPECT_DEATH(
      agent.ObservePerPair({1.0, 2.0}, f.View(), f.affordable, false),
      "one reward per pending pair");
}

TEST(DqnAgentTest, UcbSpreadsSelectionsAcrossPairs) {
  AgentFixture f;
  DqnAgent agent = f.MakeAgent(ExplorationMode::kUcb);
  // Repeatedly select 1 object / 1 annotator without recording answers:
  // the UCB bonus must rotate through different pairs.
  std::set<std::pair<int, int>> chosen;
  for (int round = 0; round < 12; ++round) {
    std::vector<Assignment> batch =
        agent.SelectBatch(f.View(), 1, 1, f.affordable);
    ASSERT_EQ(batch.size(), 1u);
    chosen.insert({batch[0].object, batch[0].annotators[0]});
    agent.Observe(0.0, f.View(), f.affordable, false);
  }
  EXPECT_GE(chosen.size(), 6u);
}

TEST(DqnAgentTest, EpsilonDecays) {
  AgentFixture f;
  DqnAgentOptions options;
  options.exploration = ExplorationMode::kEpsilonGreedy;
  options.epsilon = 0.5;
  options.epsilon_decay = 0.5;
  options.epsilon_min = 0.1;
  options.seed = 3;
  DqnAgent agent(options);
  agent.BeginEpisode(4, 3);
  for (int i = 0; i < 10; ++i) {
    agent.Score(f.View(), f.affordable);
  }
  EXPECT_DOUBLE_EQ(agent.current_epsilon(), 0.1);
}

TEST(DqnAgentDeathTest, ScoreBeforeBeginEpisodeAborts) {
  AgentFixture f;
  DqnAgentOptions options;
  DqnAgent agent(options);
  EXPECT_DEATH(agent.Score(f.View(), f.affordable), "BeginEpisode");
}

TEST(PickTopKSumAssignmentsTest, PicksHighestSums) {
  ScoredCandidates c;
  // Two objects; object 0 has scores {5, 1}, object 1 has {3, 3}.
  c.actions = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  c.features = Matrix(4, 1);
  c.scores = {5.0, 1.0, 3.0, 3.0};
  std::vector<size_t> chosen;
  std::vector<Assignment> out =
      PickTopKSumAssignments(c, /*k=*/2, /*num_objects_to_pick=*/1, 2,
                             &chosen);
  ASSERT_EQ(out.size(), 1u);
  // Sum for object 0 = 6, object 1 = 6; tie resolves deterministically —
  // either is acceptable, but exactly one object with 2 annotators.
  EXPECT_EQ(out[0].annotators.size(), 2u);
  EXPECT_EQ(chosen.size(), 2u);
}

TEST(PickTopKSumAssignmentsTest, KOneIsArgmaxPerObject) {
  ScoredCandidates c;
  c.actions = {{0, 0}, {0, 1}, {1, 0}};
  c.features = Matrix(3, 1);
  c.scores = {1.0, 9.0, 5.0};
  std::vector<size_t> chosen;
  std::vector<Assignment> out = PickTopKSumAssignments(c, 1, 2, 2, &chosen);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].object, 0);  // Score 9 beats 5.
  EXPECT_EQ(out[0].annotators[0], 1);
  EXPECT_EQ(out[1].object, 1);
  EXPECT_EQ(out[1].annotators[0], 0);
}

}  // namespace
}  // namespace crowdrl::rl
