// The thread-pool determinism contract: every threaded hot path
// (candidate featurization, batch Q inference, the joint-inference E-step)
// must produce results bit-identical to the serial threads=1 path.

#include <vector>

#include <gtest/gtest.h>

#include "classifier/mlp_classifier.h"
#include "inference/joint_inference.h"
#include "math/gemm.h"
#include "nn/mlp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rl/dqn_agent.h"
#include "tests/testing/sim_helpers.h"
#include "util/thread_pool.h"

namespace crowdrl::rl {
namespace {

// Large enough that the parallel chunking in featurization (grain 128) and
// MLP inference (64-row chunks) actually engages.
struct WideFixture {
  static constexpr size_t kObjects = 60;
  static constexpr size_t kAnnotators = 6;

  crowd::AnswerLog answers{kObjects, kAnnotators};
  std::vector<double> costs;
  std::vector<double> qualities;
  std::vector<bool> is_expert;
  std::vector<bool> labelled;
  std::vector<bool> affordable;

  WideFixture() {
    for (size_t j = 0; j < kAnnotators; ++j) {
      bool expert = j + 1 == kAnnotators;
      costs.push_back(expert ? 10.0 : 1.0);
      qualities.push_back(0.5 + 0.05 * static_cast<double>(j));
      is_expert.push_back(expert);
      affordable.push_back(true);
    }
    labelled.assign(kObjects, false);
    // A few answers so the history features are non-trivial.
    answers.Record(0, 0, 1);
    answers.Record(0, 1, 0);
    answers.Record(1, 2, 1);
  }

  StateView View() const {
    StateView view;
    view.answers = &answers;
    view.num_classes = 2;
    view.annotator_costs = &costs;
    view.annotator_qualities = &qualities;
    view.annotator_is_expert = &is_expert;
    view.labelled = &labelled;
    view.budget_fraction_remaining = 0.8;
    view.fraction_labelled = 0.1;
    view.max_cost = 10.0;
    return view;
  }

  DqnAgent MakeAgent(int threads, bool incremental = true) const {
    DqnAgentOptions options;
    options.exploration = ExplorationMode::kUcb;
    options.seed = 13;
    options.q.seed = 17;
    options.threads = threads;
    options.q.threads = threads;
    options.incremental = incremental;
    // This suite compares scores bitwise against from-scratch
    // featurization; the factorized head is only ULP-close.
    options.factorized_q_head = false;
    DqnAgent agent(options);
    agent.BeginEpisode(kObjects, kAnnotators);
    return agent;
  }
};

void ExpectScoredBitIdentical(const ScoredCandidates& got,
                              const ScoredCandidates& baseline) {
  ASSERT_EQ(got.actions.size(), baseline.actions.size());
  for (size_t i = 0; i < got.actions.size(); ++i) {
    EXPECT_EQ(got.actions[i].object, baseline.actions[i].object);
    EXPECT_EQ(got.actions[i].annotator, baseline.actions[i].annotator);
    EXPECT_EQ(got.scores[i], baseline.scores[i]) << "candidate " << i;
  }
  ASSERT_EQ(got.features.rows(), baseline.features.rows());
  ASSERT_EQ(got.features.cols(), baseline.features.cols());
  for (size_t i = 0; i < got.features.size(); ++i) {
    EXPECT_EQ(got.features.data()[i], baseline.features.data()[i]);
  }
}

TEST(ParallelScoringTest, ScoreIsBitIdenticalAcrossThreadCounts) {
  WideFixture f;
  DqnAgent serial = f.MakeAgent(1);
  ScoredCandidates baseline = serial.Score(f.View(), f.affordable);
  ASSERT_EQ(baseline.actions.size(), f.kObjects * f.kAnnotators - 3);

  for (int threads : {2, 4}) {
    DqnAgent agent = f.MakeAgent(threads);
    ScoredCandidates got = agent.Score(f.View(), f.affordable);
    ExpectScoredBitIdentical(got, baseline);
  }
}

// The incremental (ScoreCache) engine must reproduce the naive
// featurize-every-pair path bit for bit, at every thread count — including
// on a second Score after the state changed (exercising the dirty-block
// resync rather than the first full rebuild).
TEST(ParallelScoringTest, CachedScoringMatchesNaiveAcrossThreadCounts) {
  WideFixture f;
  DqnAgent naive = f.MakeAgent(1, /*incremental=*/false);
  ScoredCandidates baseline = naive.Score(f.View(), f.affordable);

  std::vector<DqnAgent> cached;
  for (int threads : {1, 2, 4}) {
    cached.push_back(f.MakeAgent(threads, /*incremental=*/true));
    ScoredCandidates got = cached.back().Score(f.View(), f.affordable);
    ExpectScoredBitIdentical(got, baseline);
  }

  // Dirty a few blocks: new answers, a quality update, progress counters.
  f.answers.Record(2, 3, 1);
  f.answers.Record(0, 2, 0);
  f.qualities[4] = 0.9;
  StateView view = f.View();
  view.budget_fraction_remaining = 0.6;
  view.fraction_labelled = 0.25;

  ScoredCandidates baseline2 = naive.Score(view, f.affordable);
  for (DqnAgent& agent : cached) {
    ScoredCandidates got = agent.Score(view, f.affordable);
    ExpectScoredBitIdentical(got, baseline2);
  }
}

// The observability hooks in the scoring hot path (featurize / q_forward /
// top-k spans, ScoreCache counters, ThreadPool histograms, GEMM
// histograms) only read clocks and bump atomics: scoring with metrics and
// tracing fully enabled must stay bit-identical to the uninstrumented
// baseline, on first build and on dirty resync, at every thread count.
TEST(ParallelScoringTest, ScoreIsBitIdenticalWithObservabilityEnabled) {
  WideFixture f;
  DqnAgent serial = f.MakeAgent(1);
  ScoredCandidates baseline = serial.Score(f.View(), f.affordable);

  obs::SetEnabled(true);
  obs::SetTracing(true);
  for (int threads : {1, 4}) {
    DqnAgent agent = f.MakeAgent(threads);
    ScoredCandidates got = agent.Score(f.View(), f.affordable);
    ExpectScoredBitIdentical(got, baseline);
  }
  // The hooks actually fired: the instrumented Syncs were counted and the
  // scoring spans recorded.
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Get().Snapshot();
  uint64_t syncs = 0;
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "crowdrl.scorecache.syncs") syncs = counter.value;
  }
  EXPECT_GE(syncs, 2u);
  EXPECT_GT(obs::TraceRecorder::Get().event_count(), 0u);
  obs::TraceRecorder::Get().Clear();
  obs::SetTracing(false);
  obs::SetEnabled(false);

  // And back off: disabled again reproduces the same bits.
  DqnAgent after = f.MakeAgent(2);
  ExpectScoredBitIdentical(after.Score(f.View(), f.affordable), baseline);
}

TEST(ParallelScoringTest, MlpInferOnPoolMatchesSerialBitwise) {
  Rng rng(7);
  nn::Mlp mlp({12, 32, 4},
              {nn::Activation::kRelu, nn::Activation::kIdentity}, &rng);
  Matrix batch(300, 12);
  for (size_t i = 0; i < batch.size(); ++i) {
    batch.data()[i] = rng.Uniform(-2.0, 2.0);
  }

  Matrix serial = mlp.Infer(batch);
  ThreadPool pool(4);
  Matrix parallel = mlp.Infer(batch, &pool);
  ASSERT_EQ(parallel.rows(), serial.rows());
  ASSERT_EQ(parallel.cols(), serial.cols());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel.data()[i], serial.data()[i]) << "element " << i;
  }

  // nullptr pool falls back to the serial path.
  Matrix fallback = mlp.Infer(batch, nullptr);
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(fallback.data()[i], serial.data()[i]);
  }
}

// The same invariant, pushed all the way down to the GEMM kernels the MLP
// paths are built on (tests/math/gemm_test.cc sweeps more shapes; this
// pins the layer the RL hot path actually exercises: Q-scoring-sized
// activations against a weight matrix, all three layout variants).
TEST(ParallelScoringTest, GemmKernelsOnPoolMatchSerialBitwise) {
  Rng rng(23);
  Matrix acts(360, 48);
  Matrix weights(32, 48);
  acts.FillUniform(&rng, -2.0, 2.0);
  weights.FillUniform(&rng, -1.0, 1.0);

  Matrix nt_serial, tn_serial, nn_serial;
  gemm::MatMulNTInto(acts, weights, &nt_serial);
  gemm::MatMulTNInto(nt_serial, acts, &tn_serial);
  gemm::MatMulInto(nt_serial, weights, &nn_serial);

  for (size_t threads : {2, 4}) {
    ThreadPool pool(threads);
    Matrix nt, tn, nn;
    gemm::MatMulNTInto(acts, weights, &nt, &pool);
    gemm::MatMulTNInto(nt_serial, acts, &tn, &pool);
    gemm::MatMulInto(nt_serial, weights, &nn, &pool);
    for (size_t i = 0; i < nt_serial.size(); ++i) {
      ASSERT_EQ(nt.data()[i], nt_serial.data()[i]) << "NT " << i;
    }
    for (size_t i = 0; i < tn_serial.size(); ++i) {
      ASSERT_EQ(tn.data()[i], tn_serial.data()[i]) << "TN " << i;
    }
    for (size_t i = 0; i < nn_serial.size(); ++i) {
      ASSERT_EQ(nn.data()[i], nn_serial.data()[i]) << "NN " << i;
    }
  }
}

TEST(ParallelScoringTest, JointInferenceIsBitIdenticalAcrossThreadCounts) {
  crowdrl::testing::SimWorld world =
      crowdrl::testing::MakeSimWorld(200, 4, 1, 3, 91);

  auto run = [&](int threads) {
    classifier::MlpClassifier phi(world.dataset.feature_dim(), 2);
    inference::InferenceInput input;
    input.answers = world.answers.get();
    input.num_classes = 2;
    input.objects = world.objects;
    input.features = &world.dataset.features;
    input.classifier = &phi;
    inference::JointInferenceOptions options;
    options.threads = threads;
    inference::JointInference joint(options);
    inference::InferenceResult result;
    EXPECT_TRUE(joint.Infer(input, &result).ok());
    return result;
  };

  inference::InferenceResult serial = run(1);
  for (int threads : {2, 4}) {
    inference::InferenceResult got = run(threads);
    EXPECT_EQ(got.labels, serial.labels);
    EXPECT_EQ(got.log_likelihood, serial.log_likelihood);  // Bitwise.
    EXPECT_EQ(got.iterations, serial.iterations);
    ASSERT_EQ(got.posteriors.size(), serial.posteriors.size());
    for (size_t i = 0; i < serial.posteriors.size(); ++i) {
      EXPECT_EQ(got.posteriors.data()[i], serial.posteriors.data()[i]);
    }
    EXPECT_EQ(got.qualities, serial.qualities);
  }
}

}  // namespace
}  // namespace crowdrl::rl
