#ifndef CROWDRL_TESTS_TESTING_MINI_JSON_H_
#define CROWDRL_TESTS_TESTING_MINI_JSON_H_

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

/// \file
/// \brief A tiny recursive-descent JSON parser for tests that need to
/// assert exported artifacts (run_metrics.jsonl records, Chrome trace
/// JSON, bench reports) are well-formed and carry the expected keys.
/// Strict enough for the purpose: rejects trailing garbage, unterminated
/// strings/containers, and bad literals. Not a production parser — no
/// \uXXXX decoding (escapes are validated and kept verbatim) and numbers
/// go through strtod.

namespace crowdrl::testing {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  bool Has(const std::string& key) const {
    return type == Type::kObject && object.count(key) > 0;
  }
  /// Object member access; dies (via .at) on a missing key or non-object,
  /// which in a test is the failure we want loudly.
  const JsonValue& operator[](const std::string& key) const {
    return object.at(key);
  }
};

class MiniJsonParser {
 public:
  /// Parses exactly one JSON value spanning the whole input (leading and
  /// trailing whitespace allowed). Returns false on any syntax error.
  static bool Parse(const std::string& text, JsonValue* out) {
    MiniJsonParser parser(text);
    if (!parser.ParseValue(out)) return false;
    parser.SkipWhitespace();
    return parser.pos_ == text.size();
  }

 private:
  explicit MiniJsonParser(const std::string& text) : text_(text) {}

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseLiteral(const char* literal) {
    size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(
                      static_cast<unsigned char>(text_[pos_ + i]))) {
                return false;
              }
            }
            out->append("\\u").append(text_, pos_, 4);  // Kept verbatim.
            pos_ += 4;
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // Unterminated.
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    size_t digits = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      ++digits;
    }
    if (digits == 0) return false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++digits;
      }
      if (digits == 0) return false;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      digits = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++digits;
      }
      if (digits == 0) return false;
    }
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                              nullptr);
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->type = JsonValue::Type::kObject;
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWhitespace();
        std::string key;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->object[key] = std::move(value);
        SkipWhitespace();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->type = JsonValue::Type::kArray;
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        SkipWhitespace();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return ParseLiteral("true");
    }
    if (c == 'f') {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return ParseLiteral("false");
    }
    if (c == 'n') {
      out->type = JsonValue::Type::kNull;
      return ParseLiteral("null");
    }
    return ParseNumber(out);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace crowdrl::testing

#endif  // CROWDRL_TESTS_TESTING_MINI_JSON_H_
