#ifndef CROWDRL_TESTS_TESTING_REFERENCE_GEMM_H_
#define CROWDRL_TESTS_TESTING_REFERENCE_GEMM_H_

#include <cstring>

#include "math/matrix.h"

namespace crowdrl::testing {

/// Verbatim copies of the pre-kernel (seed) dense routines, kept as the
/// golden reference the blocked kernels must match bit for bit: the naive
/// i-k-j product — including the historical `a == 0.0` skip, which is a
/// bit-level no-op on finite data — and the element-wise transpose. Do not
/// "fix" or speed these up; their only job is to preserve the historical
/// accumulation order.
inline Matrix ReferenceMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.Row(i);
    double* out_row = out.Row(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      double v = a_row[k];
      if (v == 0.0) continue;
      const double* b_row = b.Row(k);
      for (size_t j = 0; j < b.cols(); ++j) out_row[j] += v * b_row[j];
    }
  }
  return out;
}

inline Matrix ReferenceTransposed(const Matrix& m) {
  Matrix out(m.cols(), m.rows());
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) out.At(c, r) = m.At(r, c);
  }
  return out;
}

/// Byte-level equality (distinguishes -0.0 from 0.0 and compares NaN
/// payloads, which EXPECT_DOUBLE_EQ would not).
inline bool BitEqual(const Matrix& a, const Matrix& b) {
  if (!a.SameShape(b)) return false;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(double)) == 0;
}

}  // namespace crowdrl::testing

#endif  // CROWDRL_TESTS_TESTING_REFERENCE_GEMM_H_
