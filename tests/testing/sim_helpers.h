#ifndef CROWDRL_TESTS_TESTING_SIM_HELPERS_H_
#define CROWDRL_TESTS_TESTING_SIM_HELPERS_H_

#include <memory>
#include <vector>

#include "crowd/annotator.h"
#include "crowd/answer_log.h"
#include "data/dataset.h"
#include "util/random.h"

namespace crowdrl::testing {

/// A simulated truth-inference scenario: a dataset with hidden truths, a
/// pool, and a fully populated answer log (`answers_per_object` answers
/// per object from a random annotator subset).
struct SimWorld {
  data::Dataset dataset;
  std::vector<crowd::Annotator> pool;
  std::unique_ptr<crowd::AnswerLog> answers;
  std::vector<int> objects;  ///< All object ids (inference targets).
};

inline SimWorld MakeSimWorld(size_t num_objects, int num_workers,
                             int num_experts, int answers_per_object,
                             uint64_t seed, double separation = 2.6) {
  SimWorld world;
  data::GaussianMixtureOptions data_options;
  data_options.num_objects = num_objects;
  data_options.view = {12, separation, 0.5};
  data_options.seed = seed;
  world.dataset = data::MakeGaussianMixture(data_options);

  crowd::PoolOptions pool_options;
  pool_options.num_workers = num_workers;
  pool_options.num_experts = num_experts;
  pool_options.seed = seed + 1;
  world.pool = crowd::MakePool(pool_options);

  world.answers = std::make_unique<crowd::AnswerLog>(num_objects,
                                                     world.pool.size());
  Rng rng(seed + 2);
  for (size_t i = 0; i < num_objects; ++i) {
    world.objects.push_back(static_cast<int>(i));
    std::vector<int> who = rng.SampleWithoutReplacement(
        static_cast<int>(world.pool.size()),
        std::min<int>(answers_per_object,
                      static_cast<int>(world.pool.size())));
    for (int j : who) {
      world.answers->Record(
          static_cast<int>(i), j,
          world.pool[static_cast<size_t>(j)].Answer(
              world.dataset.truths[i], &rng));
    }
  }
  return world;
}

/// Fraction of inferred labels matching the hidden truths.
inline double LabelAccuracy(const SimWorld& world,
                            const std::vector<int>& labels) {
  size_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] ==
        world.dataset.truths[static_cast<size_t>(world.objects[i])]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace crowdrl::testing

#endif  // CROWDRL_TESTS_TESTING_SIM_HELPERS_H_
