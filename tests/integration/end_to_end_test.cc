// Cross-module integration tests: the full CrowdRL stack against naive
// strategies, adversarial conditions, and degenerate inputs.

#include <gtest/gtest.h>

#include "baselines/ablations.h"
#include "core/crowdrl.h"
#include "crowd/budget.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "inference/majority_vote.h"

namespace crowdrl {
namespace {

struct World {
  data::Dataset dataset;
  std::vector<crowd::Annotator> pool;

  World(size_t objects, uint64_t seed, crowd::PoolOptions pool_options =
                                           crowd::PoolOptions()) {
    data::GaussianMixtureOptions options;
    options.num_objects = objects;
    options.view = {12, 2.6, 0.5};
    options.seed = seed;
    dataset = data::MakeGaussianMixture(options);
    pool_options.seed = seed + 1;
    pool = crowd::MakePool(pool_options);
  }
};

// Naive reference: random assignment of k random annotators per object in
// arrival order until the budget runs out, majority-vote inference,
// majority-class fallback. Everything CrowdRL claims to improve over.
double NaiveAccuracy(const World& world, double budget, uint64_t seed) {
  Rng rng(seed);
  crowd::Budget purse(budget);
  crowd::AnswerLog log(world.dataset.num_objects(), world.pool.size());
  std::vector<int> order(world.dataset.num_objects());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  rng.Shuffle(&order);
  for (int object : order) {
    std::vector<int> who = rng.SampleWithoutReplacement(
        static_cast<int>(world.pool.size()), 3);
    for (int j : who) {
      const crowd::Annotator& a = world.pool[static_cast<size_t>(j)];
      if (!purse.CanAfford(a.cost())) continue;
      (void)purse.Spend(a.cost());
      log.Record(object, j,
                 a.Answer(world.dataset.truths[static_cast<size_t>(object)],
                          &rng));
    }
  }
  inference::InferenceInput input;
  input.answers = &log;
  input.num_classes = 2;
  for (size_t i = 0; i < world.dataset.num_objects(); ++i) {
    input.objects.push_back(static_cast<int>(i));
  }
  inference::MajorityVote mv;
  inference::InferenceResult result;
  if (!mv.Infer(input, &result).ok()) return 0.0;
  return eval::ComputeMetrics(world.dataset.truths, result.labels, 2)
      .accuracy;
}

class CrowdRlBeatsNaiveTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrowdRlBeatsNaiveTest, HigherAccuracyAtEqualBudget) {
  World world(300, GetParam());
  const double kBudget = 1200.0;
  core::CrowdRlFramework framework;
  core::LabellingResult result;
  ASSERT_TRUE(
      framework.Run(world.dataset, world.pool, kBudget, GetParam(), &result)
          .ok());
  double crowdrl_acc =
      eval::ComputeMetrics(world.dataset.truths, result.labels, 2).accuracy;
  double naive_acc = NaiveAccuracy(world, kBudget, GetParam() + 50);
  EXPECT_GT(crowdrl_acc + 0.02, naive_acc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrowdRlBeatsNaiveTest,
                         ::testing::Values(201, 202, 203));

TEST(AdversarialTest, WorseThanRandomWorkersDoNotBreakTheRun) {
  crowd::PoolOptions pool_options;
  pool_options.num_workers = 3;
  pool_options.num_experts = 2;
  pool_options.worker_diag_lo = 0.15;  // Adversarial workers.
  pool_options.worker_diag_hi = 0.35;
  World world(120, 31, pool_options);
  core::CrowdRlFramework framework;
  core::LabellingResult result;
  ASSERT_TRUE(
      framework.Run(world.dataset, world.pool, 500.0, 1, &result).ok());
  EXPECT_EQ(result.labels.size(), 120u);
  EXPECT_LE(result.budget_spent, 500.0 + 1e-9);
}

TEST(AdversarialTest, WorkerOnlyPoolStillRuns) {
  crowd::PoolOptions pool_options;
  pool_options.num_workers = 5;
  pool_options.num_experts = 0;
  World world(120, 37, pool_options);
  core::CrowdRlFramework framework;
  core::LabellingResult result;
  ASSERT_TRUE(
      framework.Run(world.dataset, world.pool, 400.0, 1, &result).ok());
  eval::Metrics m =
      eval::ComputeMetrics(world.dataset.truths, result.labels, 2);
  EXPECT_GT(m.accuracy, 0.6);
}

TEST(AdversarialTest, SingleAnnotatorPool) {
  crowd::PoolOptions pool_options;
  pool_options.num_workers = 0;
  pool_options.num_experts = 1;
  World world(60, 41, pool_options);
  core::CrowdRlFramework framework;
  core::LabellingResult result;
  ASSERT_TRUE(
      framework.Run(world.dataset, world.pool, 200.0, 1, &result).ok());
  EXPECT_EQ(result.labels.size(), 60u);
}

TEST(TinyBudgetTest, BudgetSmallerThanOneExpertAnswer) {
  World world(40, 43);
  core::CrowdRlFramework framework;
  core::LabellingResult result;
  // Budget 2: only two worker answers total.
  ASSERT_TRUE(
      framework.Run(world.dataset, world.pool, 2.0, 1, &result).ok());
  EXPECT_LE(result.budget_spent, 2.0 + 1e-9);
  EXPECT_EQ(result.labels.size(), 40u);
}

TEST(ExperimentRunnerIntegrationTest, FullCellOverTwoSeeds) {
  World world(100, 47);
  eval::ExperimentSpec spec;
  spec.dataset = &world.dataset;
  spec.pool = &world.pool;
  spec.budget = 400.0;
  spec.num_seeds = 2;
  core::CrowdRlFramework framework;
  eval::ExperimentOutcome outcome;
  ASSERT_TRUE(eval::RunExperiment(&framework, spec, &outcome).ok());
  EXPECT_EQ(outcome.runs, 2);
  EXPECT_GT(outcome.mean.accuracy, 0.6);
  EXPECT_LE(outcome.mean_spent, 400.0 + 1e-9);
}

// Full-ablation sanity: each removed mechanism must not make the variant
// fail its contract (quality ordering is the Fig. 8 bench's job).
TEST(AblationIntegrationTest, AllVariantsProduceCompleteLabellings) {
  World world(150, 53);
  for (auto& framework :
       {baselines::MakeM1(), baselines::MakeM2(), baselines::MakeM3()}) {
    core::LabellingResult result;
    ASSERT_TRUE(
        framework->Run(world.dataset, world.pool, 500.0, 2, &result).ok())
        << framework->name();
    EXPECT_EQ(result.labels.size(), 150u) << framework->name();
  }
}

}  // namespace
}  // namespace crowdrl
