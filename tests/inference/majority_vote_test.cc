#include "inference/majority_vote.h"

#include <gtest/gtest.h>

#include "tests/testing/sim_helpers.h"

namespace crowdrl::inference {
namespace {

// The paper's Example 1: o1 answered 'positive', 'negative', 'positive'
// by w1, w3, w4 -> majority voting infers 'positive' (class 1 here).
TEST(MajorityVoteTest, PaperExampleObjectOne) {
  crowd::AnswerLog log(1, 5);
  log.Record(0, 0, 1);  // w1: positive.
  log.Record(0, 2, 0);  // w3: negative.
  log.Record(0, 3, 1);  // w4: positive.
  InferenceInput input;
  input.answers = &log;
  input.num_classes = 2;
  input.objects = {0};
  MajorityVote mv;
  InferenceResult result;
  ASSERT_TRUE(mv.Infer(input, &result).ok());
  EXPECT_EQ(result.labels[0], 1);
  EXPECT_NEAR(result.posteriors.At(0, 1), 2.0 / 3.0, 1e-12);
}

TEST(MajorityVoteTest, TieBreaksToLowestClass) {
  crowd::AnswerLog log(1, 2);
  log.Record(0, 0, 0);
  log.Record(0, 1, 1);
  InferenceInput input;
  input.answers = &log;
  input.num_classes = 2;
  input.objects = {0};
  MajorityVote mv;
  InferenceResult result;
  ASSERT_TRUE(mv.Infer(input, &result).ok());
  EXPECT_EQ(result.labels[0], 0);
}

TEST(MajorityVoteTest, UnansweredObjectGetsUniformPosterior) {
  crowd::AnswerLog log(2, 2);
  log.Record(0, 0, 1);
  InferenceInput input;
  input.answers = &log;
  input.num_classes = 2;
  input.objects = {0, 1};
  MajorityVote mv;
  InferenceResult result;
  ASSERT_TRUE(mv.Infer(input, &result).ok());
  EXPECT_DOUBLE_EQ(result.posteriors.At(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(result.posteriors.At(1, 1), 0.5);
}

TEST(MajorityVoteTest, AccurateOnGoodAnnotators) {
  testing::SimWorld world = testing::MakeSimWorld(300, 0, 5, 3, 11);
  InferenceInput input;
  input.answers = world.answers.get();
  input.num_classes = 2;
  input.objects = world.objects;
  MajorityVote mv;
  InferenceResult result;
  ASSERT_TRUE(mv.Infer(input, &result).ok());
  EXPECT_GT(testing::LabelAccuracy(world, result.labels), 0.95);
}

TEST(MajorityVoteTest, InputValidation) {
  MajorityVote mv;
  InferenceResult result;
  InferenceInput input;
  EXPECT_TRUE(mv.Infer(input, &result).IsInvalidArgument());
  crowd::AnswerLog log(1, 1);
  input.answers = &log;
  input.num_classes = 1;
  input.objects = {0};
  EXPECT_TRUE(mv.Infer(input, &result).IsInvalidArgument());
  input.num_classes = 2;
  input.objects = {5};
  EXPECT_TRUE(mv.Infer(input, &result).IsInvalidArgument());
  input.objects = {};
  EXPECT_TRUE(mv.Infer(input, &result).IsInvalidArgument());
}

TEST(MajorityVoteTest, ReportsQualitiesPerAnnotator) {
  testing::SimWorld world = testing::MakeSimWorld(100, 2, 2, 3, 13);
  InferenceInput input;
  input.answers = world.answers.get();
  input.num_classes = 2;
  input.objects = world.objects;
  MajorityVote mv;
  InferenceResult result;
  ASSERT_TRUE(mv.Infer(input, &result).ok());
  EXPECT_EQ(result.qualities.size(), world.pool.size());
  EXPECT_EQ(result.confusions.size(), world.pool.size());
  for (const auto& cm : result.confusions) {
    EXPECT_TRUE(cm.Validate().ok());
  }
}

}  // namespace
}  // namespace crowdrl::inference
