#include "inference/pm.h"

#include <gtest/gtest.h>

#include "inference/majority_vote.h"
#include "tests/testing/sim_helpers.h"

namespace crowdrl::inference {
namespace {

InferenceInput MakeInput(const testing::SimWorld& world) {
  InferenceInput input;
  input.answers = world.answers.get();
  input.num_classes = 2;
  input.objects = world.objects;
  return input;
}

TEST(PmTest, AccurateOnGoodAnnotators) {
  testing::SimWorld world = testing::MakeSimWorld(300, 0, 5, 3, 51);
  PmInference pm;
  InferenceResult result;
  ASSERT_TRUE(pm.Infer(MakeInput(world), &result).ok());
  EXPECT_GT(testing::LabelAccuracy(world, result.labels), 0.95);
}

TEST(PmTest, ConvergesAndReportsIterations) {
  testing::SimWorld world = testing::MakeSimWorld(150, 3, 2, 4, 53);
  PmInference pm;
  InferenceResult result;
  ASSERT_TRUE(pm.Infer(MakeInput(world), &result).ok());
  EXPECT_GT(result.iterations, 0);
  EXPECT_LT(result.iterations, PmOptions().max_iterations);
}

class PmVsMvTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PmVsMvTest, NotWorseThanMajorityVoteOnSkewedPools) {
  testing::SimWorld world = testing::MakeSimWorld(400, 4, 1, 5, GetParam());
  InferenceInput input = MakeInput(world);
  PmInference pm;
  MajorityVote mv;
  InferenceResult pm_result, mv_result;
  ASSERT_TRUE(pm.Infer(input, &pm_result).ok());
  ASSERT_TRUE(mv.Infer(input, &mv_result).ok());
  EXPECT_GE(testing::LabelAccuracy(world, pm_result.labels) + 0.01,
            testing::LabelAccuracy(world, mv_result.labels));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PmVsMvTest,
                         ::testing::Values(61, 62, 63, 64));

TEST(PmTest, PosteriorsAreNormalizedVoteMasses) {
  testing::SimWorld world = testing::MakeSimWorld(60, 2, 2, 3, 67);
  PmInference pm;
  InferenceResult result;
  ASSERT_TRUE(pm.Infer(MakeInput(world), &result).ok());
  for (size_t r = 0; r < result.posteriors.rows(); ++r) {
    double sum = result.posteriors.At(r, 0) + result.posteriors.At(r, 1);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(PmTest, BetterAnnotatorsGetHigherEstimatedQuality) {
  testing::SimWorld world = testing::MakeSimWorld(600, 3, 2, 5, 71);
  PmInference pm;
  InferenceResult result;
  ASSERT_TRUE(pm.Infer(MakeInput(world), &result).ok());
  // Experts (ids 3, 4) must outrank the weakest worker.
  double weakest_worker = std::min(
      {result.qualities[0], result.qualities[1], result.qualities[2]});
  EXPECT_GT(result.qualities[3], weakest_worker);
  EXPECT_GT(result.qualities[4], weakest_worker);
}

TEST(PmTest, InputValidation) {
  PmInference pm;
  InferenceResult result;
  InferenceInput input;
  EXPECT_TRUE(pm.Infer(input, &result).IsInvalidArgument());
}

}  // namespace
}  // namespace crowdrl::inference
