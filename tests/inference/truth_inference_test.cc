// Unit tests for the shared truth-inference helpers (the E/M-step
// building blocks every model reuses).

#include "inference/truth_inference.h"

#include <gtest/gtest.h>

namespace crowdrl::inference {
namespace {

TEST(MajorityPosteriorsTest, FractionsAndUniformFallback) {
  crowd::AnswerLog log(3, 4);
  log.Record(0, 0, 1);
  log.Record(0, 1, 1);
  log.Record(0, 2, 0);
  log.Record(1, 3, 0);
  InferenceInput input;
  input.answers = &log;
  input.num_classes = 2;
  input.objects = {0, 1, 2};
  Matrix q = MajorityPosteriors(input);
  EXPECT_NEAR(q.At(0, 1), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(q.At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(q.At(2, 0), 0.5);  // No answers: uniform.
}

TEST(EstimateConfusionsTest, RecoversCleanAnnotator) {
  // One annotator answering truthfully on one-hot posteriors.
  crowd::AnswerLog log(40, 1);
  Matrix posteriors(40, 2);
  InferenceInput input;
  input.answers = &log;
  input.num_classes = 2;
  for (int i = 0; i < 40; ++i) {
    int truth = i % 2;
    log.Record(i, 0, truth);
    posteriors.At(static_cast<size_t>(i), static_cast<size_t>(truth)) =
        1.0;
    input.objects.push_back(i);
  }
  auto confusions = EstimateConfusions(input, posteriors, 0.01);
  ASSERT_EQ(confusions.size(), 1u);
  EXPECT_GT(confusions[0].At(0, 0), 0.99);
  EXPECT_GT(confusions[0].At(1, 1), 0.99);
  EXPECT_TRUE(confusions[0].Validate().ok());
}

TEST(EstimateConfusionsTest, UnseenAnnotatorGetsDiagonalLeaningPrior) {
  crowd::AnswerLog log(2, 2);
  log.Record(0, 0, 1);
  Matrix posteriors(1, 2);
  posteriors.At(0, 1) = 1.0;
  InferenceInput input;
  input.answers = &log;
  input.num_classes = 2;
  input.objects = {0};
  auto confusions = EstimateConfusions(input, posteriors, 0.5);
  // Annotator 1 never answered: smoothing-only estimate with extra
  // diagonal mass.
  EXPECT_GT(confusions[1].At(0, 0), 0.5);
  EXPECT_GT(confusions[1].At(1, 1), 0.5);
  EXPECT_TRUE(confusions[1].Validate().ok());
}

TEST(EstimateClassPriorsTest, MassAndSmoothing) {
  Matrix posteriors = Matrix::FromRows({{1.0, 0.0}, {1.0, 0.0},
                                        {0.0, 1.0}});
  std::vector<double> priors = EstimateClassPriors(posteriors, 0.0);
  EXPECT_NEAR(priors[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(priors[1], 1.0 / 3.0, 1e-12);
  // Heavy smoothing pulls toward uniform.
  std::vector<double> smoothed = EstimateClassPriors(posteriors, 100.0);
  EXPECT_NEAR(smoothed[0], 0.5, 0.01);
}

TEST(ValidateInputTest, EveryBranch) {
  InferenceInput input;
  EXPECT_TRUE(ValidateInput(input).IsInvalidArgument());  // No answers.
  crowd::AnswerLog log(2, 2);
  input.answers = &log;
  input.num_classes = 1;
  input.objects = {0};
  EXPECT_TRUE(ValidateInput(input).IsInvalidArgument());  // < 2 classes.
  input.num_classes = 2;
  input.objects = {};
  EXPECT_TRUE(ValidateInput(input).IsInvalidArgument());  // No objects.
  input.objects = {9};
  EXPECT_TRUE(ValidateInput(input).IsInvalidArgument());  // Out of range.
  input.objects = {0};
  Matrix features(1, 3);  // Wrong row count (needs 2).
  input.features = &features;
  EXPECT_TRUE(ValidateInput(input).IsInvalidArgument());
  Matrix good_features(2, 3);
  input.features = &good_features;
  std::vector<crowd::AnnotatorType> one_type = {
      crowd::AnnotatorType::kWorker};
  input.annotator_types = &one_type;  // Needs 2.
  EXPECT_TRUE(ValidateInput(input).IsInvalidArgument());
  std::vector<crowd::AnnotatorType> two_types = {
      crowd::AnnotatorType::kWorker, crowd::AnnotatorType::kExpert};
  input.annotator_types = &two_types;
  EXPECT_TRUE(ValidateInput(input).ok());
}

TEST(BoundExpertQualityTest, NoOpWhenAllAboveEpsilon) {
  std::vector<crowd::ConfusionMatrix> confusions = {
      crowd::ConfusionMatrix::Diagonal(2, 0.95)};
  std::vector<crowd::AnnotatorType> types = {
      crowd::AnnotatorType::kExpert};
  BoundExpertQuality(types, 0.8, 0.05, &confusions);
  EXPECT_DOUBLE_EQ(confusions[0].At(0, 0), 0.95);
}

TEST(BoundExpertQualityTest, MultiClassRowStaysStochastic) {
  std::vector<crowd::ConfusionMatrix> confusions = {
      crowd::ConfusionMatrix(Matrix::FromRows({{0.2, 0.5, 0.3},
                                               {0.1, 0.8, 0.1},
                                               {0.3, 0.3, 0.4}}))};
  std::vector<crowd::AnnotatorType> types = {
      crowd::AnnotatorType::kExpert};
  BoundExpertQuality(types, 0.7, 0.1, &confusions);
  EXPECT_TRUE(confusions[0].Validate().ok());
  EXPECT_DOUBLE_EQ(confusions[0].At(0, 0), 0.9);
  EXPECT_DOUBLE_EQ(confusions[0].At(2, 2), 0.9);
  // Off-diagonal proportions of row 0 preserved: 0.5 : 0.3.
  EXPECT_NEAR(confusions[0].At(0, 1) / confusions[0].At(0, 2),
              0.5 / 0.3, 1e-9);
}

}  // namespace
}  // namespace crowdrl::inference
