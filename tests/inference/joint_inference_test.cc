#include "inference/joint_inference.h"

#include <gtest/gtest.h>

#include "classifier/mlp_classifier.h"
#include "inference/dawid_skene.h"
#include "tests/testing/sim_helpers.h"

namespace crowdrl::inference {
namespace {

classifier::MlpClassifier MakePhi(const testing::SimWorld& world) {
  return classifier::MlpClassifier(world.dataset.feature_dim(), 2);
}

InferenceInput MakeInput(const testing::SimWorld& world,
                         classifier::Classifier* phi,
                         const std::vector<crowd::AnnotatorType>* types) {
  InferenceInput input;
  input.answers = world.answers.get();
  input.num_classes = 2;
  input.objects = world.objects;
  input.features = &world.dataset.features;
  input.classifier = phi;
  input.annotator_types = types;
  return input;
}

TEST(JointInferenceTest, RequiresFeaturesAndClassifier) {
  testing::SimWorld world = testing::MakeSimWorld(30, 2, 1, 2, 81);
  JointInference joint;
  InferenceResult result;
  InferenceInput input;
  input.answers = world.answers.get();
  input.num_classes = 2;
  input.objects = world.objects;
  EXPECT_TRUE(joint.Infer(input, &result).IsInvalidArgument());
  input.features = &world.dataset.features;
  EXPECT_TRUE(joint.Infer(input, &result).IsInvalidArgument());
}

TEST(JointInferenceTest, RejectsMismatchedClassifier) {
  testing::SimWorld world = testing::MakeSimWorld(30, 2, 1, 2, 82);
  classifier::MlpClassifier wrong_dim(world.dataset.feature_dim() + 1, 2);
  JointInference joint;
  InferenceResult result;
  InferenceInput input = MakeInput(world, &wrong_dim, nullptr);
  EXPECT_TRUE(joint.Infer(input, &result).IsInvalidArgument());
}

TEST(JointInferenceTest, TrainsTheClassifierAsASideEffect) {
  testing::SimWorld world = testing::MakeSimWorld(150, 3, 2, 3, 83);
  classifier::MlpClassifier phi = MakePhi(world);
  EXPECT_FALSE(phi.is_trained());
  JointInference joint;
  InferenceResult result;
  ASSERT_TRUE(joint.Infer(MakeInput(world, &phi, nullptr), &result).ok());
  EXPECT_TRUE(phi.is_trained());
}

class JointBeatsPlainEmTest : public ::testing::TestWithParam<uint64_t> {};

// The paper's core claim (Section V): coupling the classifier into the EM
// must not lose to annotator-only EM when features are informative, and
// should win with few noisy answers per object.
TEST_P(JointBeatsPlainEmTest, NotWorseThanDawidSkene) {
  testing::SimWorld world =
      testing::MakeSimWorld(400, 5, 0, 2, GetParam(), /*separation=*/3.2);
  classifier::MlpClassifier phi = MakePhi(world);
  std::vector<crowd::AnnotatorType> types;
  for (const auto& a : world.pool) types.push_back(a.type());

  JointInference joint;
  InferenceResult joint_result;
  ASSERT_TRUE(
      joint.Infer(MakeInput(world, &phi, &types), &joint_result).ok());

  DawidSkene em;
  InferenceResult em_result;
  InferenceInput em_input;
  em_input.answers = world.answers.get();
  em_input.num_classes = 2;
  em_input.objects = world.objects;
  ASSERT_TRUE(em.Infer(em_input, &em_result).ok());

  EXPECT_GE(testing::LabelAccuracy(world, joint_result.labels) + 0.015,
            testing::LabelAccuracy(world, em_result.labels));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JointBeatsPlainEmTest,
                         ::testing::Values(91, 92, 93, 94, 95));

TEST(JointInferenceTest, ExpertBoundingHoldsAfterInference) {
  testing::SimWorld world = testing::MakeSimWorld(60, 1, 2, 3, 97);
  classifier::MlpClassifier phi = MakePhi(world);
  std::vector<crowd::AnnotatorType> types;
  for (const auto& a : world.pool) types.push_back(a.type());
  JointInferenceOptions options;
  options.expert_epsilon = 0.8;
  options.expert_floor_slack = 0.05;
  JointInference joint(options);
  InferenceResult result;
  ASSERT_TRUE(joint.Infer(MakeInput(world, &phi, &types), &result).ok());
  for (size_t j = 0; j < world.pool.size(); ++j) {
    if (!world.pool[j].is_expert()) continue;
    for (int c = 0; c < 2; ++c) {
      // Bounded: either naturally above epsilon or clamped to the floor.
      EXPECT_GE(result.confusions[j].At(c, c), 0.8 - 1e-9);
    }
    EXPECT_TRUE(result.confusions[j].Validate().ok());
  }
}

TEST(BoundExpertQualityTest, ClampsOnlyExperts) {
  std::vector<crowd::ConfusionMatrix> confusions = {
      crowd::ConfusionMatrix(Matrix::FromRows({{0.4, 0.6}, {0.5, 0.5}})),
      crowd::ConfusionMatrix(Matrix::FromRows({{0.4, 0.6}, {0.1, 0.9}})),
  };
  std::vector<crowd::AnnotatorType> types = {crowd::AnnotatorType::kWorker,
                                             crowd::AnnotatorType::kExpert};
  BoundExpertQuality(types, /*epsilon=*/0.8, /*floor_slack=*/0.05,
                     &confusions);
  // Worker untouched.
  EXPECT_DOUBLE_EQ(confusions[0].At(0, 0), 0.4);
  // Expert row 0 (diag 0.4 < 0.8) clamped to the 0.95 floor; row 1
  // (diag 0.9 >= 0.8) untouched.
  EXPECT_NEAR(confusions[1].At(0, 0), 0.95, 1e-12);
  EXPECT_NEAR(confusions[1].At(0, 1), 0.05, 1e-12);
  EXPECT_NEAR(confusions[1].At(1, 1), 0.9, 1e-12);
  EXPECT_TRUE(confusions[1].Validate().ok());
}

TEST(ClassifierAsAnnotatorTest, RunsAndTrimsOutputsToRealAnnotators) {
  testing::SimWorld world = testing::MakeSimWorld(150, 3, 1, 3, 99);
  classifier::MlpClassifier phi = MakePhi(world);
  ClassifierAsAnnotator naive;
  InferenceResult result;
  ASSERT_TRUE(naive.Infer(MakeInput(world, &phi, nullptr), &result).ok());
  EXPECT_EQ(result.labels.size(), world.objects.size());
  EXPECT_EQ(result.confusions.size(), world.pool.size());
  EXPECT_EQ(result.qualities.size(), world.pool.size());
  EXPECT_GT(testing::LabelAccuracy(world, result.labels), 0.75);
}

}  // namespace
}  // namespace crowdrl::inference
