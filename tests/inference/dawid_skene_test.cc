#include "inference/dawid_skene.h"

#include <gtest/gtest.h>

#include "inference/majority_vote.h"
#include "tests/testing/sim_helpers.h"

namespace crowdrl::inference {
namespace {

InferenceInput MakeInput(const testing::SimWorld& world) {
  InferenceInput input;
  input.answers = world.answers.get();
  input.num_classes = 2;
  input.objects = world.objects;
  return input;
}

TEST(DawidSkeneTest, RecoversTruthWithGoodAnnotators) {
  testing::SimWorld world = testing::MakeSimWorld(300, 0, 5, 3, 21);
  DawidSkene em;
  InferenceResult result;
  ASSERT_TRUE(em.Infer(MakeInput(world), &result).ok());
  EXPECT_GT(testing::LabelAccuracy(world, result.labels), 0.97);
  EXPECT_GT(result.iterations, 0);
}

TEST(DawidSkeneTest, PosteriorsAreDistributions) {
  testing::SimWorld world = testing::MakeSimWorld(50, 3, 1, 3, 22);
  DawidSkene em;
  InferenceResult result;
  ASSERT_TRUE(em.Infer(MakeInput(world), &result).ok());
  for (size_t r = 0; r < result.posteriors.rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < 2; ++c) {
      double q = result.posteriors.At(r, c);
      EXPECT_GE(q, 0.0);
      EXPECT_LE(q, 1.0);
      sum += q;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

class DawidSkeneVsMvTest : public ::testing::TestWithParam<uint64_t> {};

// With heterogeneous annotator quality, EM's quality weighting must not
// lose to unweighted majority voting.
TEST_P(DawidSkeneVsMvTest, AtLeastAsGoodAsMajorityVote) {
  testing::SimWorld world = testing::MakeSimWorld(400, 4, 1, 5, GetParam());
  InferenceInput input = MakeInput(world);
  DawidSkene em;
  MajorityVote mv;
  InferenceResult em_result, mv_result;
  ASSERT_TRUE(em.Infer(input, &em_result).ok());
  ASSERT_TRUE(mv.Infer(input, &mv_result).ok());
  EXPECT_GE(testing::LabelAccuracy(world, em_result.labels) + 0.01,
            testing::LabelAccuracy(world, mv_result.labels));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DawidSkeneVsMvTest,
                         ::testing::Values(31, 32, 33, 34, 35));

TEST(DawidSkeneTest, EstimatedQualitiesTrackTrueQualities) {
  // All five annotators answer every object: plenty of signal.
  testing::SimWorld world = testing::MakeSimWorld(600, 3, 2, 5, 41);
  DawidSkene em;
  InferenceResult result;
  ASSERT_TRUE(em.Infer(MakeInput(world), &result).ok());
  for (size_t j = 0; j < world.pool.size(); ++j) {
    EXPECT_NEAR(result.qualities[j], world.pool[j].TrueQuality(), 0.08)
        << "annotator " << j;
  }
}

TEST(DawidSkeneTest, ConvergesWithinIterationCap) {
  testing::SimWorld world = testing::MakeSimWorld(100, 2, 2, 4, 43);
  EmOptions options;
  options.max_iterations = 100;
  DawidSkene em(options);
  InferenceResult result;
  ASSERT_TRUE(em.Infer(MakeInput(world), &result).ok());
  EXPECT_LT(result.iterations, 100);
}

TEST(DawidSkeneTest, AdversarialAnnotatorsDoNotCrash) {
  // Workers systematically worse than chance.
  crowd::PoolOptions options;
  options.num_workers = 4;
  options.num_experts = 0;
  options.worker_diag_lo = 0.1;
  options.worker_diag_hi = 0.3;
  std::vector<crowd::Annotator> pool = crowd::MakePool(options);
  crowd::AnswerLog log(100, pool.size());
  Rng rng(47);
  data::GaussianMixtureOptions d;
  d.num_objects = 100;
  data::Dataset dataset = data::MakeGaussianMixture(d);
  std::vector<int> objects;
  for (int i = 0; i < 100; ++i) {
    objects.push_back(i);
    for (size_t j = 0; j < pool.size(); ++j) {
      log.Record(i, static_cast<int>(j),
                 pool[j].Answer(dataset.truths[static_cast<size_t>(i)],
                                &rng));
    }
  }
  InferenceInput input;
  input.answers = &log;
  input.num_classes = 2;
  input.objects = objects;
  DawidSkene em;
  InferenceResult result;
  EXPECT_TRUE(em.Infer(input, &result).ok());
  EXPECT_EQ(result.labels.size(), 100u);
}

}  // namespace
}  // namespace crowdrl::inference
