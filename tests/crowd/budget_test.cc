#include "crowd/budget.h"

#include <gtest/gtest.h>

namespace crowdrl::crowd {
namespace {

TEST(BudgetTest, SpendAndRemaining) {
  Budget b(100.0);
  EXPECT_TRUE(b.Spend(30.0).ok());
  EXPECT_DOUBLE_EQ(b.spent(), 30.0);
  EXPECT_DOUBLE_EQ(b.remaining(), 70.0);
  EXPECT_DOUBLE_EQ(b.total(), 100.0);
}

TEST(BudgetTest, OverspendFailsAndDebitsNothing) {
  Budget b(10.0);
  EXPECT_TRUE(b.Spend(8.0).ok());
  Status s = b.Spend(5.0);
  EXPECT_TRUE(s.IsOutOfBudget());
  EXPECT_DOUBLE_EQ(b.spent(), 8.0);
  EXPECT_TRUE(b.Spend(2.0).ok());
  EXPECT_DOUBLE_EQ(b.remaining(), 0.0);
}

TEST(BudgetTest, NegativeSpendRejected) {
  Budget b(10.0);
  EXPECT_TRUE(b.Spend(-1.0).IsInvalidArgument());
}

TEST(BudgetTest, CanAfford) {
  Budget b(5.0);
  EXPECT_TRUE(b.CanAfford(5.0));
  EXPECT_FALSE(b.CanAfford(5.1));
  EXPECT_TRUE(b.Spend(5.0).ok());
  EXPECT_FALSE(b.CanAfford(0.1));
  EXPECT_TRUE(b.CanAfford(0.0));
}

TEST(BudgetTest, ZeroBudget) {
  Budget b(0.0);
  EXPECT_FALSE(b.CanAfford(1.0));
  EXPECT_TRUE(b.Spend(0.0).ok());
  EXPECT_TRUE(b.Spend(1.0).IsOutOfBudget());
}

TEST(BudgetTest, FloatingPointAccumulationTolerated) {
  Budget b(1.0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(b.Spend(0.1).ok()) << "step " << i;
  }
  EXPECT_NEAR(b.remaining(), 0.0, 1e-9);
}

}  // namespace
}  // namespace crowdrl::crowd
