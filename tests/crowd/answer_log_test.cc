#include "crowd/answer_log.h"

#include <gtest/gtest.h>

namespace crowdrl::crowd {
namespace {

TEST(AnswerLogTest, StartsEmpty) {
  AnswerLog log(4, 3);
  EXPECT_EQ(log.num_objects(), 4u);
  EXPECT_EQ(log.num_annotators(), 3u);
  EXPECT_EQ(log.total_answers(), 0u);
  EXPECT_FALSE(log.HasAnswer(0, 0));
  EXPECT_EQ(log.Answer(0, 0), AnswerLog::kNoAnswer);
  EXPECT_EQ(log.AnswerCount(2), 0);
}

TEST(AnswerLogTest, RecordAndQuery) {
  AnswerLog log(4, 3);
  log.Record(1, 2, 0);
  log.Record(1, 0, 1);
  EXPECT_TRUE(log.HasAnswer(1, 2));
  EXPECT_EQ(log.Answer(1, 2), 0);
  EXPECT_EQ(log.AnswerCount(1), 2);
  EXPECT_EQ(log.total_answers(), 2u);
  const auto& answers = log.AnswersFor(1);
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0], (std::pair<int, int>{2, 0}));
  EXPECT_EQ(answers[1], (std::pair<int, int>{0, 1}));
}

TEST(AnswerLogTest, LabelHistogram) {
  AnswerLog log(2, 3);
  log.Record(0, 0, 1);
  log.Record(0, 1, 1);
  log.Record(0, 2, 0);
  std::vector<int> hist = log.LabelHistogram(0, 2);
  EXPECT_EQ(hist[0], 1);
  EXPECT_EQ(hist[1], 2);
  EXPECT_EQ(log.LabelHistogram(1, 2), (std::vector<int>{0, 0}));
}

TEST(AnswerLogDeathTest, DuplicateRecordAborts) {
  AnswerLog log(2, 2);
  log.Record(0, 0, 1);
  EXPECT_DEATH(log.Record(0, 0, 0), "duplicate answer");
}

TEST(AnswerLogDeathTest, NegativeLabelAborts) {
  AnswerLog log(2, 2);
  EXPECT_DEATH(log.Record(0, 0, -1), "");
}

TEST(AnswerLogDeathTest, HistogramRejectsOutOfRangeLabel) {
  AnswerLog log(1, 1);
  log.Record(0, 0, 5);
  EXPECT_DEATH(log.LabelHistogram(0, 2), "outside class range");
}

}  // namespace
}  // namespace crowdrl::crowd
