#include "crowd/answer_log.h"

#include <vector>

#include <gtest/gtest.h>

#include "io/serializer.h"

namespace crowdrl::crowd {
namespace {

TEST(AnswerLogTest, StartsEmpty) {
  AnswerLog log(4, 3);
  EXPECT_EQ(log.num_objects(), 4u);
  EXPECT_EQ(log.num_annotators(), 3u);
  EXPECT_EQ(log.total_answers(), 0u);
  EXPECT_FALSE(log.HasAnswer(0, 0));
  EXPECT_EQ(log.Answer(0, 0), AnswerLog::kNoAnswer);
  EXPECT_EQ(log.AnswerCount(2), 0);
}

TEST(AnswerLogTest, RecordAndQuery) {
  AnswerLog log(4, 3);
  log.Record(1, 2, 0);
  log.Record(1, 0, 1);
  EXPECT_TRUE(log.HasAnswer(1, 2));
  EXPECT_EQ(log.Answer(1, 2), 0);
  EXPECT_EQ(log.AnswerCount(1), 2);
  EXPECT_EQ(log.total_answers(), 2u);
  const auto& answers = log.AnswersFor(1);
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0], (std::pair<int, int>{2, 0}));
  EXPECT_EQ(answers[1], (std::pair<int, int>{0, 1}));
}

TEST(AnswerLogTest, LabelHistogram) {
  AnswerLog log(2, 3);
  log.Record(0, 0, 1);
  log.Record(0, 1, 1);
  log.Record(0, 2, 0);
  std::vector<int> hist = log.LabelHistogram(0, 2);
  EXPECT_EQ(hist[0], 1);
  EXPECT_EQ(hist[1], 2);
  EXPECT_EQ(log.LabelHistogram(1, 2), (std::vector<int>{0, 0}));
}

TEST(AnswerLogTest, RevisionBumpsOncePerRecord) {
  AnswerLog log(3, 2);
  EXPECT_EQ(log.revision(), 0u);
  log.Record(0, 0, 1);
  EXPECT_EQ(log.revision(), 1u);
  log.Record(2, 1, 0);
  log.Record(0, 1, 1);
  EXPECT_EQ(log.revision(), 3u);
}

TEST(AnswerLogTest, TouchedSinceReportsObjectsPerAnswer) {
  AnswerLog log(4, 3);
  log.Record(1, 0, 0);
  size_t rev = log.revision();
  EXPECT_TRUE(log.TouchedSince(rev).empty());
  log.Record(3, 1, 1);
  log.Record(1, 1, 0);
  log.Record(3, 2, 1);
  IntSpan touched = log.TouchedSince(rev);
  ASSERT_EQ(touched.size(), 3u);
  EXPECT_EQ(touched[0], 3);
  EXPECT_EQ(touched[1], 1);
  EXPECT_EQ(touched[2], 3);  // Repeats are kept: one entry per answer.
  // From revision 0 the full history is visible.
  EXPECT_EQ(log.TouchedSince(0).size(), 4u);
}

TEST(AnswerLogTest, LabelHistogramIntoReusesBufferAndMatches) {
  AnswerLog log(2, 4);
  log.Record(0, 0, 2);
  log.Record(0, 1, 2);
  log.Record(0, 3, 0);
  std::vector<int> hist;
  log.LabelHistogramInto(0, 3, &hist);
  EXPECT_EQ(hist, (std::vector<int>{1, 0, 2}));
  EXPECT_EQ(hist, log.LabelHistogram(0, 3));
  // Wider class count than any recorded label: zero-filled tail.
  log.LabelHistogramInto(0, 5, &hist);
  EXPECT_EQ(hist, (std::vector<int>{1, 0, 2, 0, 0}));
  log.LabelHistogramInto(1, 3, &hist);
  EXPECT_EQ(hist, (std::vector<int>{0, 0, 0}));
}

TEST(AnswerLogTest, AnswersForIsStableAcrossRecordsToOtherObjects) {
  AnswerLog log(3, 4);
  log.Record(1, 2, 0);
  AnswerSpan before = log.AnswersFor(1);
  const auto* data = before.begin();
  // Appends to other objects (and to object 1 itself) never move the span.
  log.Record(0, 0, 1);
  log.Record(2, 3, 1);
  log.Record(1, 0, 1);
  AnswerSpan after = log.AnswersFor(1);
  EXPECT_EQ(after.begin(), data);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[0], (std::pair<int, int>{2, 0}));
  EXPECT_EQ(after[1], (std::pair<int, int>{0, 1}));
}

TEST(AnswerLogTest, SaveLoadRebuildsIndexes) {
  AnswerLog log(3, 3);
  log.Record(0, 1, 2);
  log.Record(2, 0, 0);
  log.Record(0, 2, 2);
  io::Writer writer;
  log.SaveState(&writer);

  AnswerLog restored(3, 3);
  io::Reader reader(writer.bytes());
  ASSERT_TRUE(restored.LoadState(&reader).ok());
  EXPECT_EQ(restored.revision(), 3u);
  EXPECT_EQ(restored.Answer(0, 1), 2);
  EXPECT_EQ(restored.Answer(2, 0), 0);
  ASSERT_EQ(restored.AnswersFor(0).size(), 2u);
  EXPECT_EQ(restored.AnswersFor(0)[0], (std::pair<int, int>{1, 2}));
  EXPECT_EQ(restored.LabelHistogram(0, 3), (std::vector<int>{0, 0, 2}));
  EXPECT_EQ(restored.LabelHistogram(2, 3), (std::vector<int>{1, 0, 0}));
  // The touch log is rebuilt per object; the full set is recoverable from
  // revision 0 (consumers resync from 0 after a restore).
  EXPECT_EQ(restored.TouchedSince(0).size(), 3u);
  // Appending after a restore keeps every index coherent.
  restored.Record(0, 0, 1);
  EXPECT_EQ(restored.LabelHistogram(0, 3), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(restored.revision(), 4u);
}

TEST(AnswerLogDeathTest, DuplicateRecordAborts) {
  AnswerLog log(2, 2);
  log.Record(0, 0, 1);
  EXPECT_DEATH(log.Record(0, 0, 0), "duplicate answer");
}

TEST(AnswerLogDeathTest, NegativeLabelAborts) {
  AnswerLog log(2, 2);
  EXPECT_DEATH(log.Record(0, 0, -1), "");
}

TEST(AnswerLogDeathTest, HistogramRejectsOutOfRangeLabel) {
  AnswerLog log(1, 1);
  log.Record(0, 0, 5);
  EXPECT_DEATH(log.LabelHistogram(0, 2), "outside class range");
}

}  // namespace
}  // namespace crowdrl::crowd
