#include "crowd/answer_log.h"

#include <map>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "io/serializer.h"

namespace crowdrl::crowd {
namespace {

TEST(AnswerLogTest, StartsEmpty) {
  AnswerLog log(4, 3);
  EXPECT_EQ(log.num_objects(), 4u);
  EXPECT_EQ(log.num_annotators(), 3u);
  EXPECT_EQ(log.total_answers(), 0u);
  EXPECT_FALSE(log.HasAnswer(0, 0));
  EXPECT_EQ(log.Answer(0, 0), AnswerLog::kNoAnswer);
  EXPECT_EQ(log.AnswerCount(2), 0);
}

TEST(AnswerLogTest, RecordAndQuery) {
  AnswerLog log(4, 3);
  log.Record(1, 2, 0);
  log.Record(1, 0, 1);
  EXPECT_TRUE(log.HasAnswer(1, 2));
  EXPECT_EQ(log.Answer(1, 2), 0);
  EXPECT_EQ(log.AnswerCount(1), 2);
  EXPECT_EQ(log.total_answers(), 2u);
  const auto& answers = log.AnswersFor(1);
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0], (std::pair<int, int>{2, 0}));
  EXPECT_EQ(answers[1], (std::pair<int, int>{0, 1}));
}

TEST(AnswerLogTest, LabelHistogram) {
  AnswerLog log(2, 3);
  log.Record(0, 0, 1);
  log.Record(0, 1, 1);
  log.Record(0, 2, 0);
  std::vector<int> hist = log.LabelHistogram(0, 2);
  EXPECT_EQ(hist[0], 1);
  EXPECT_EQ(hist[1], 2);
  EXPECT_EQ(log.LabelHistogram(1, 2), (std::vector<int>{0, 0}));
}

TEST(AnswerLogTest, RevisionBumpsOncePerRecord) {
  AnswerLog log(3, 2);
  EXPECT_EQ(log.revision(), 0u);
  log.Record(0, 0, 1);
  EXPECT_EQ(log.revision(), 1u);
  log.Record(2, 1, 0);
  log.Record(0, 1, 1);
  EXPECT_EQ(log.revision(), 3u);
}

TEST(AnswerLogTest, TouchedSinceReportsObjectsPerAnswer) {
  AnswerLog log(4, 3);
  log.Record(1, 0, 0);
  size_t rev = log.revision();
  EXPECT_TRUE(log.TouchedSince(rev).empty());
  log.Record(3, 1, 1);
  log.Record(1, 1, 0);
  log.Record(3, 2, 1);
  IntSpan touched = log.TouchedSince(rev);
  ASSERT_EQ(touched.size(), 3u);
  EXPECT_EQ(touched[0], 3);
  EXPECT_EQ(touched[1], 1);
  EXPECT_EQ(touched[2], 3);  // Repeats are kept: one entry per answer.
  // From revision 0 the full history is visible.
  EXPECT_EQ(log.TouchedSince(0).size(), 4u);
}

TEST(AnswerLogTest, LabelHistogramIntoReusesBufferAndMatches) {
  AnswerLog log(2, 4);
  log.Record(0, 0, 2);
  log.Record(0, 1, 2);
  log.Record(0, 3, 0);
  std::vector<int> hist;
  log.LabelHistogramInto(0, 3, &hist);
  EXPECT_EQ(hist, (std::vector<int>{1, 0, 2}));
  EXPECT_EQ(hist, log.LabelHistogram(0, 3));
  // Wider class count than any recorded label: zero-filled tail.
  log.LabelHistogramInto(0, 5, &hist);
  EXPECT_EQ(hist, (std::vector<int>{1, 0, 2, 0, 0}));
  log.LabelHistogramInto(1, 3, &hist);
  EXPECT_EQ(hist, (std::vector<int>{0, 0, 0}));
}

TEST(AnswerLogTest, AnswersForIsStableAcrossRecordsToOtherObjects) {
  AnswerLog log(3, 4);
  log.Record(1, 2, 0);
  AnswerSpan before = log.AnswersFor(1);
  const auto* data = before.begin();
  // Appends to *other* objects never move the span: rows are sharded and
  // each object owns its storage.
  log.Record(0, 0, 1);
  log.Record(2, 3, 1);
  EXPECT_EQ(log.AnswersFor(1).begin(), data);
  // An append to object 1 itself may relocate its entries (the documented
  // contract: spans are valid until the next Record); re-fetching sees the
  // full recording order.
  log.Record(1, 0, 1);
  AnswerSpan after = log.AnswersFor(1);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[0], (std::pair<int, int>{2, 0}));
  EXPECT_EQ(after[1], (std::pair<int, int>{0, 1}));
}

TEST(AnswerLogTest, SaveLoadRebuildsIndexes) {
  AnswerLog log(3, 3);
  log.Record(0, 1, 2);
  log.Record(2, 0, 0);
  log.Record(0, 2, 2);
  io::Writer writer;
  log.SaveState(&writer);

  AnswerLog restored(3, 3);
  io::Reader reader(writer.bytes());
  ASSERT_TRUE(restored.LoadState(&reader).ok());
  EXPECT_EQ(restored.revision(), 3u);
  EXPECT_EQ(restored.Answer(0, 1), 2);
  EXPECT_EQ(restored.Answer(2, 0), 0);
  ASSERT_EQ(restored.AnswersFor(0).size(), 2u);
  EXPECT_EQ(restored.AnswersFor(0)[0], (std::pair<int, int>{1, 2}));
  EXPECT_EQ(restored.LabelHistogram(0, 3), (std::vector<int>{0, 0, 2}));
  EXPECT_EQ(restored.LabelHistogram(2, 3), (std::vector<int>{1, 0, 0}));
  // The touch log is rebuilt per object; the full set is recoverable from
  // revision 0 (consumers resync from 0 after a restore).
  EXPECT_EQ(restored.TouchedSince(0).size(), 3u);
  // Appending after a restore keeps every index coherent.
  restored.Record(0, 0, 1);
  EXPECT_EQ(restored.LabelHistogram(0, 3), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(restored.revision(), 4u);
}

TEST(AnswerLogDeathTest, DuplicateRecordAborts) {
  AnswerLog log(2, 2);
  log.Record(0, 0, 1);
  EXPECT_DEATH(log.Record(0, 0, 0), "duplicate answer");
}

TEST(AnswerLogDeathTest, NegativeLabelAborts) {
  AnswerLog log(2, 2);
  EXPECT_DEATH(log.Record(0, 0, -1), "");
}

TEST(AnswerLogDeathTest, HistogramRejectsOutOfRangeLabel) {
  AnswerLog log(1, 1);
  log.Record(0, 0, 5);
  EXPECT_DEATH(log.LabelHistogram(0, 2), "outside class range");
}

TEST(AnswerLogShardTest, GeometryCoversAllObjects) {
  AnswerLog log(10, 3, /*shard_objects=*/4);
  EXPECT_EQ(log.shard_objects(), 4u);
  ASSERT_EQ(log.num_shards(), 3u);
  EXPECT_EQ(log.ShardRange(0), (std::pair<size_t, size_t>{0, 4}));
  EXPECT_EQ(log.ShardRange(1), (std::pair<size_t, size_t>{4, 8}));
  EXPECT_EQ(log.ShardRange(2), (std::pair<size_t, size_t>{8, 10}));
  EXPECT_TRUE(log.ShardEmpty(0));
  log.Record(5, 1, 0);
  EXPECT_TRUE(log.ShardEmpty(0));
  EXPECT_FALSE(log.ShardEmpty(1));
  EXPECT_EQ(log.ShardAnswerCount(1), 1u);
}

TEST(AnswerLogShardTest, ShardSectionsRoundTripInAnyOrder) {
  AnswerLog log(11, 4, /*shard_objects=*/3);
  log.Record(0, 1, 2);
  log.Record(10, 3, 0);
  log.Record(10, 0, 1);
  log.Record(4, 2, 1);
  log.Record(0, 0, 2);

  // Serialize each non-empty shard on its own; shard 2 (objects 6..8) has
  // no answers and is skipped — exactly what a streaming checkpoint does.
  std::vector<io::Writer> sections(log.num_shards());
  std::vector<size_t> non_empty;
  for (size_t s = 0; s < log.num_shards(); ++s) {
    if (log.ShardEmpty(s)) continue;
    log.SaveShardState(s, &sections[s]);
    non_empty.push_back(s);
  }
  ASSERT_EQ(non_empty, (std::vector<size_t>{0, 1, 3}));

  // Restore in reverse shard order into a fresh log.
  AnswerLog restored(11, 4, /*shard_objects=*/3);
  for (auto it = non_empty.rbegin(); it != non_empty.rend(); ++it) {
    io::Reader reader(sections[*it].bytes());
    ASSERT_TRUE(restored.LoadShardState(&reader).ok());
  }
  EXPECT_EQ(restored.total_answers(), log.total_answers());
  // The assembled log is byte-identical to a monolithic save of the
  // original (shard order cannot matter: SaveState walks objects in id
  // order).
  io::Writer whole_original;
  io::Writer whole_restored;
  log.SaveState(&whole_original);
  restored.SaveState(&whole_restored);
  EXPECT_EQ(whole_original.bytes(), whole_restored.bytes());
  EXPECT_EQ(restored.LabelHistogram(10, 3), (std::vector<int>{1, 1, 0}));
}

TEST(AnswerLogShardTest, LoadShardRejectsPopulatedOrMismatchedRange) {
  AnswerLog log(8, 2, /*shard_objects=*/4);
  log.Record(1, 0, 1);
  io::Writer section;
  log.SaveShardState(0, &section);

  // Loading into a range that already holds answers is refused.
  io::Reader reader(section.bytes());
  Status status = log.LoadShardState(&reader);
  EXPECT_FALSE(status.ok());

  // A log with different shard geometry refuses the section outright.
  AnswerLog other_geometry(8, 2, /*shard_objects=*/3);
  io::Reader reader2(section.bytes());
  EXPECT_FALSE(other_geometry.LoadShardState(&reader2).ok());

  // Matching geometry and an empty range accepts it.
  AnswerLog fresh(8, 2, /*shard_objects=*/4);
  io::Reader reader3(section.bytes());
  ASSERT_TRUE(fresh.LoadShardState(&reader3).ok());
  EXPECT_EQ(fresh.Answer(1, 0), 1);
}

// Property test: interleaved appends across distant object ids keep every
// index (AnswersFor order, dense grid, histograms, counts, touch log)
// consistent with a naive shadow log, including after a SaveState/
// LoadState round trip. Object ids span a large sparse range so shard
// allocation is exercised on far-apart ranges.
TEST(AnswerLogPropertyTest, SparseInterleavedAppendsMatchNaiveShadow) {
  constexpr size_t kObjects = 200000;
  constexpr size_t kAnnotators = 7;
  constexpr int kClasses = 4;
  constexpr int kAnswers = 3000;
  AnswerLog log(kObjects, kAnnotators);

  struct Naive {
    std::vector<std::pair<int, int>> entries;
    std::vector<int> grid = std::vector<int>(kAnnotators,
                                             AnswerLog::kNoAnswer);
  };
  std::map<int, Naive> shadow;
  std::mt19937 rng(20260808);
  // Hop between distant ids: stride through the space with a large
  // coprime step plus jitter, so consecutive appends land in different
  // shards and revisit earlier shards later.
  size_t cursor = 12345;
  int recorded = 0;
  while (recorded < kAnswers) {
    cursor = (cursor + 61813) % kObjects;
    const int object = static_cast<int>(cursor);
    const int annotator = static_cast<int>(rng() % kAnnotators);
    Naive& naive = shadow[object];
    if (naive.grid[static_cast<size_t>(annotator)] != AnswerLog::kNoAnswer) {
      continue;
    }
    const int label = static_cast<int>(rng() % kClasses);
    log.Record(object, annotator, label);
    naive.grid[static_cast<size_t>(annotator)] = label;
    naive.entries.emplace_back(annotator, label);
    ++recorded;
  }
  ASSERT_EQ(log.total_answers(), static_cast<size_t>(kAnswers));

  auto check_against_shadow = [&](const AnswerLog& got) {
    for (const auto& [object, naive] : shadow) {
      ASSERT_EQ(got.AnswerCount(object),
                static_cast<int>(naive.entries.size()));
      AnswerSpan span = got.AnswersFor(object);
      ASSERT_EQ(span.size(), naive.entries.size());
      std::vector<int> hist(kClasses, 0);
      for (size_t e = 0; e < span.size(); ++e) {
        ASSERT_EQ(span[e], naive.entries[e]);
        ++hist[static_cast<size_t>(span[e].second)];
      }
      EXPECT_EQ(got.LabelHistogram(object, kClasses), hist);
      for (size_t j = 0; j < kAnnotators; ++j) {
        EXPECT_EQ(got.Answer(object, static_cast<int>(j)), naive.grid[j]);
      }
    }
    // A sample of never-touched objects reads as empty.
    for (int probe : {1, 999, 54321, static_cast<int>(kObjects) - 1}) {
      if (shadow.count(probe)) continue;
      EXPECT_EQ(got.AnswerCount(probe), 0);
      EXPECT_TRUE(got.AnswersFor(probe).empty());
      EXPECT_FALSE(got.HasAnswer(probe, 0));
    }
  };
  check_against_shadow(log);

  // Memory scales with touched ranges: far fewer shards materialize than
  // answers were recorded against a dense layout.
  size_t populated = 0;
  for (size_t s = 0; s < log.num_shards(); ++s) {
    populated += log.ShardEmpty(s) ? 0 : 1;
  }
  EXPECT_GT(populated, 1u);
  EXPECT_LE(populated, log.num_shards());

  io::Writer writer;
  log.SaveState(&writer);
  AnswerLog restored(kObjects, kAnnotators);
  io::Reader reader(writer.bytes());
  ASSERT_TRUE(restored.LoadState(&reader).ok());
  check_against_shadow(restored);
  EXPECT_EQ(restored.TouchedSince(0).size(), log.TouchedSince(0).size());
  io::Writer rewritten;
  restored.SaveState(&rewritten);
  EXPECT_EQ(rewritten.bytes(), writer.bytes());
}

}  // namespace
}  // namespace crowdrl::crowd
