#include "crowd/annotator.h"

#include <gtest/gtest.h>

namespace crowdrl::crowd {
namespace {

TEST(AnnotatorTest, Accessors) {
  Annotator a(3, AnnotatorType::kExpert, ConfusionMatrix::Diagonal(2, 0.95),
              10.0);
  EXPECT_EQ(a.id(), 3);
  EXPECT_TRUE(a.is_expert());
  EXPECT_DOUBLE_EQ(a.cost(), 10.0);
  EXPECT_DOUBLE_EQ(a.TrueQuality(), 0.95);
}

TEST(AnnotatorTest, AnswersFollowConfusionMatrix) {
  Annotator perfect(0, AnnotatorType::kExpert,
                    ConfusionMatrix::Diagonal(3, 1.0), 5.0);
  Rng rng(7);
  for (int truth = 0; truth < 3; ++truth) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(perfect.Answer(truth, &rng), truth);
    }
  }
}

TEST(MakePoolTest, CompositionAndIds) {
  PoolOptions options;
  options.num_workers = 3;
  options.num_experts = 2;
  std::vector<Annotator> pool = MakePool(options);
  ASSERT_EQ(pool.size(), 5u);
  for (size_t j = 0; j < pool.size(); ++j) {
    EXPECT_EQ(pool[j].id(), static_cast<int>(j));
  }
  for (int j = 0; j < 3; ++j) {
    EXPECT_FALSE(pool[static_cast<size_t>(j)].is_expert());
    EXPECT_DOUBLE_EQ(pool[static_cast<size_t>(j)].cost(),
                     options.worker_cost);
  }
  for (int j = 3; j < 5; ++j) {
    EXPECT_TRUE(pool[static_cast<size_t>(j)].is_expert());
    EXPECT_DOUBLE_EQ(pool[static_cast<size_t>(j)].cost(),
                     options.expert_cost);
  }
}

TEST(MakePoolTest, ExpertsBeatWorkersOnAverage) {
  PoolOptions options;
  options.num_workers = 10;
  options.num_experts = 10;
  std::vector<Annotator> pool = MakePool(options);
  double worker_quality = 0.0;
  double expert_quality = 0.0;
  for (const Annotator& a : pool) {
    (a.is_expert() ? expert_quality : worker_quality) += a.TrueQuality();
  }
  EXPECT_GT(expert_quality / 10.0, worker_quality / 10.0);
  EXPECT_GT(expert_quality / 10.0, 0.9);
}

TEST(MakePoolTest, Deterministic) {
  PoolOptions options;
  std::vector<Annotator> a = MakePool(options);
  std::vector<Annotator> b = MakePool(options);
  for (size_t j = 0; j < a.size(); ++j) {
    EXPECT_DOUBLE_EQ(a[j].TrueQuality(), b[j].TrueQuality());
  }
}

class PoolOfSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(PoolOfSizeTest, SplitsSensibly) {
  int total = GetParam();
  PoolOptions options = PoolOfSize(total, 2, 1);
  EXPECT_EQ(options.num_workers + options.num_experts, total);
  if (total >= 2) {
    EXPECT_GE(options.num_workers, 1);
    EXPECT_GE(options.num_experts, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PoolOfSizeTest,
                         ::testing::Values(1, 2, 3, 5, 7, 20));

TEST(AnnotatorTypeTest, Names) {
  EXPECT_STREQ(AnnotatorTypeName(AnnotatorType::kWorker), "worker");
  EXPECT_STREQ(AnnotatorTypeName(AnnotatorType::kExpert), "expert");
}

}  // namespace
}  // namespace crowdrl::crowd
