#include "crowd/confusion_matrix.h"

#include <gtest/gtest.h>

namespace crowdrl::crowd {
namespace {

TEST(ConfusionMatrixTest, UniformPrior) {
  ConfusionMatrix cm(4);
  EXPECT_EQ(cm.num_classes(), 4);
  EXPECT_DOUBLE_EQ(cm.At(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(cm.Quality(), 0.25);
  EXPECT_TRUE(cm.Validate().ok());
}

TEST(ConfusionMatrixTest, Diagonal) {
  ConfusionMatrix cm = ConfusionMatrix::Diagonal(3, 0.7);
  EXPECT_DOUBLE_EQ(cm.At(1, 1), 0.7);
  EXPECT_DOUBLE_EQ(cm.At(1, 0), 0.15);
  EXPECT_DOUBLE_EQ(cm.Quality(), 0.7);
  EXPECT_TRUE(cm.Validate().ok());
}

// The paper's Table V (expert w4): quality tr/|C| = (0.98 + 0.99)/2.
TEST(ConfusionMatrixTest, PaperTableVQuality) {
  ConfusionMatrix w4(Matrix::FromRows({{0.98, 0.02}, {0.01, 0.99}}));
  EXPECT_DOUBLE_EQ(w4.Quality(), 0.985);
}

// Table IV (worker w1): quality (0.60 + 0.70)/2 = 0.65.
TEST(ConfusionMatrixTest, PaperTableIVQuality) {
  ConfusionMatrix w1(Matrix::FromRows({{0.60, 0.40}, {0.30, 0.70}}));
  EXPECT_DOUBLE_EQ(w1.Quality(), 0.65);
}

TEST(ConfusionMatrixTest, ConstructorNormalizesRows) {
  ConfusionMatrix cm(Matrix::FromRows({{2.0, 2.0}, {1.0, 3.0}}));
  EXPECT_DOUBLE_EQ(cm.At(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(cm.At(1, 1), 0.75);
  EXPECT_TRUE(cm.Validate().ok());
}

TEST(ConfusionMatrixDeathTest, NegativeEntryAborts) {
  EXPECT_DEATH(ConfusionMatrix(Matrix::FromRows({{1.0, -0.1}, {0.5, 0.5}})),
               "");
}

TEST(ConfusionMatrixTest, ValidateRejectsTamperedMatrix) {
  ConfusionMatrix cm = ConfusionMatrix::Diagonal(2, 0.9);
  cm.mutable_probs()->At(0, 0) = 0.5;  // Row now sums to 0.6.
  EXPECT_FALSE(cm.Validate().ok());
  cm.NormalizeRows();
  EXPECT_TRUE(cm.Validate().ok());
}

class RandomConfusionTest : public ::testing::TestWithParam<double> {};

TEST_P(RandomConfusionTest, DiagonalInRangeAndRowsStochastic) {
  double lo = GetParam();
  double hi = lo + 0.1;
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    ConfusionMatrix cm = ConfusionMatrix::Random(3, lo, hi, &rng);
    EXPECT_TRUE(cm.Validate().ok());
    for (int c = 0; c < 3; ++c) {
      EXPECT_GE(cm.At(c, c), lo - 1e-12);
      EXPECT_LE(cm.At(c, c), hi + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DiagRanges, RandomConfusionTest,
                         ::testing::Values(0.4, 0.6, 0.8, 0.89));

TEST(ConfusionMatrixTest, SampleMatchesRowDistribution) {
  ConfusionMatrix cm(Matrix::FromRows({{0.8, 0.2}, {0.1, 0.9}}));
  Rng rng(23);
  int agree = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (cm.Sample(0, &rng) == 0) ++agree;
  }
  EXPECT_NEAR(agree / static_cast<double>(kTrials), 0.8, 0.02);
}

}  // namespace
}  // namespace crowdrl::crowd
