#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace crowdrl::eval {
namespace {

TEST(MetricsTest, PerfectPrediction) {
  Metrics m = ComputeMetrics({0, 1, 0, 1}, {0, 1, 0, 1}, 2);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_DOUBLE_EQ(m.macro_f1, 1.0);
}

TEST(MetricsTest, HandComputedBinaryCase) {
  // truths:    1 1 1 0 0
  // predicted: 1 0 1 1 0
  // TP=2, FP=1, FN=1 for class 1.
  Metrics m = ComputeMetrics({1, 1, 1, 0, 0}, {1, 0, 1, 1, 0}, 2);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.6);
  EXPECT_DOUBLE_EQ(m.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.recall, 2.0 / 3.0);
  EXPECT_NEAR(m.f1, 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, PositiveClassSelectable) {
  Metrics m = ComputeMetrics({1, 1, 1, 0, 0}, {1, 0, 1, 1, 0}, 2,
                             /*positive_class=*/0);
  // For class 0: TP=1, FP=1, FN=1.
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
}

TEST(MetricsTest, AllOnePrediction) {
  Metrics m = ComputeMetrics({0, 0, 1, 1}, {1, 1, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.5);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  // Class 0 never predicted: precision 0, recall 0.
  EXPECT_DOUBLE_EQ(m.macro_recall, 0.5);
}

TEST(MetricsTest, MultiClassMacro) {
  Metrics m = ComputeMetrics({0, 1, 2}, {0, 1, 1}, 3);
  EXPECT_NEAR(m.accuracy, 2.0 / 3.0, 1e-12);
  // Class 0: P=1 R=1. Class 1: P=0.5 R=1. Class 2: P=0 R=0.
  EXPECT_NEAR(m.macro_precision, (1.0 + 0.5 + 0.0) / 3.0, 1e-12);
  EXPECT_NEAR(m.macro_recall, (1.0 + 1.0 + 0.0) / 3.0, 1e-12);
}

TEST(MetricsTest, AbsentClassScoresPerfectInMacro) {
  // Class 2 appears nowhere: contributes (1, 1) to the macro averages.
  Metrics m = ComputeMetrics({0, 1}, {0, 1}, 3);
  EXPECT_DOUBLE_EQ(m.macro_precision, 1.0);
  EXPECT_DOUBLE_EQ(m.macro_recall, 1.0);
}

TEST(MetricsDeathTest, SizeMismatchAborts) {
  EXPECT_DEATH(ComputeMetrics({0, 1}, {0}, 2), "");
}

TEST(MetricsDeathTest, OutOfRangeLabelAborts) {
  EXPECT_DEATH(ComputeMetrics({0, 2}, {0, 0}, 2), "");
  EXPECT_DEATH(ComputeMetrics({0, 0}, {0, -1}, 2), "");
}

}  // namespace
}  // namespace crowdrl::eval
