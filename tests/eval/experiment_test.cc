#include "eval/experiment.h"

#include <gtest/gtest.h>

namespace crowdrl::eval {
namespace {

// Deterministic framework that labels everything with the majority class
// it can see — ideal for checking the runner's aggregation mechanics.
class ConstantFramework : public core::LabellingFramework {
 public:
  explicit ConstantFramework(int label, double spend = 0.0)
      : label_(label), spend_(spend) {}

  Status Run(const data::Dataset& dataset,
             const std::vector<crowd::Annotator>&, double, uint64_t seed,
             core::LabellingResult* result) override {
    result->labels.assign(dataset.num_objects(), label_);
    result->sources.assign(dataset.num_objects(),
                           core::LabelSource::kFallback);
    result->budget_spent = spend_;
    result->iterations = seed;  // Varies across seeds.
    return Status::Ok();
  }

  const char* name() const override { return "Constant"; }

 private:
  int label_;
  double spend_;
};

// Framework that violates the completeness contract.
class BrokenFramework : public core::LabellingFramework {
 public:
  Status Run(const data::Dataset& dataset,
             const std::vector<crowd::Annotator>&, double, uint64_t,
             core::LabellingResult* result) override {
    result->labels.assign(dataset.num_objects(), -1);  // "Unlabelled".
    result->sources.assign(dataset.num_objects(),
                           core::LabelSource::kNone);
    return Status::Ok();
  }

  const char* name() const override { return "Broken"; }
};

struct Fixture {
  data::Dataset dataset;
  std::vector<crowd::Annotator> pool;

  Fixture() {
    data::GaussianMixtureOptions options;
    options.num_objects = 60;
    options.seed = 1;
    dataset = data::MakeGaussianMixture(options);
    pool = crowd::MakePool(crowd::PoolOptions());
  }

  ExperimentSpec Spec(int seeds) const {
    ExperimentSpec spec;
    spec.dataset = &dataset;
    spec.pool = &pool;
    spec.budget = 100.0;
    spec.num_seeds = seeds;
    return spec;
  }
};

TEST(ExperimentTest, AggregatesAcrossSeeds) {
  Fixture f;
  ConstantFramework framework(1);
  ExperimentOutcome outcome;
  ASSERT_TRUE(RunExperiment(&framework, f.Spec(3), &outcome).ok());
  EXPECT_EQ(outcome.runs, 3);
  // Identical labelling every seed: zero stddev.
  EXPECT_DOUBLE_EQ(outcome.stddev.accuracy, 0.0);
  // Accuracy equals the class-1 fraction of the dataset.
  double ones = 0.0;
  for (int y : f.dataset.truths) ones += y;
  EXPECT_NEAR(outcome.mean.accuracy,
              ones / static_cast<double>(f.dataset.num_objects()), 1e-12);
  // Iterations vary with the seed, so their mean reflects base_seed.
  EXPECT_GT(outcome.mean_iterations, 0.0);
}

TEST(ExperimentDeathTest, IncompleteLabellingAborts) {
  Fixture f;
  BrokenFramework framework;
  ExperimentOutcome outcome;
  EXPECT_DEATH(
      { (void)RunExperiment(&framework, f.Spec(1), &outcome); },
      "unlabelled");
}

TEST(ExperimentDeathTest, OverspendAborts) {
  Fixture f;
  ConstantFramework framework(0, /*spend=*/500.0);  // Budget is 100.
  ExperimentOutcome outcome;
  EXPECT_DEATH(
      { (void)RunExperiment(&framework, f.Spec(1), &outcome); },
      "overspent");
}

}  // namespace
}  // namespace crowdrl::eval
