#include "data/workloads.h"

#include <gtest/gtest.h>

namespace crowdrl::data {
namespace {

TEST(SpeechTest, PaperSizes) {
  SpeechOptions options;
  EXPECT_EQ(MakeSpeech12(options).num_objects(), 2344u);
  EXPECT_EQ(MakeSpeech3(options).num_objects(), 1898u);
}

TEST(SpeechTest, ViewDimensions) {
  SpeechOptions options;
  options.num_objects = 100;
  options.view = FeatureView::kContextual;
  EXPECT_EQ(MakeSpeech12(options).feature_dim(), 50u);
  options.view = FeatureView::kProsodic;
  EXPECT_EQ(MakeSpeech12(options).feature_dim(), 158u);
  options.view = FeatureView::kConcatenated;
  EXPECT_EQ(MakeSpeech12(options).feature_dim(), 208u);
}

TEST(SpeechTest, FullScaleProsodicDim) {
  SpeechOptions options;
  options.num_objects = 10;
  options.full_scale_prosodic = true;
  options.view = FeatureView::kProsodic;
  EXPECT_EQ(MakeSpeech12(options).feature_dim(), 1582u);
}

TEST(SpeechTest, Names) {
  SpeechOptions options;
  options.num_objects = 10;
  options.view = FeatureView::kContextual;
  EXPECT_EQ(MakeSpeech12(options).name, "S12C");
  options.view = FeatureView::kProsodic;
  EXPECT_EQ(MakeSpeech3(options).name, "S3P");
  options.view = FeatureView::kConcatenated;
  EXPECT_EQ(MakeSpeech3(options).name, "S3CP");
}

// The three views of one dataset must share ground truth and per-object
// features: S12CP's first 50 columns are exactly S12C, the rest S12P.
TEST(SpeechTest, ViewsShareTruthAndFeatures) {
  SpeechOptions options;
  options.num_objects = 50;
  options.view = FeatureView::kContextual;
  Dataset c = MakeSpeech12(options);
  options.view = FeatureView::kProsodic;
  Dataset p = MakeSpeech12(options);
  options.view = FeatureView::kConcatenated;
  Dataset cp = MakeSpeech12(options);

  EXPECT_EQ(c.truths, cp.truths);
  EXPECT_EQ(p.truths, cp.truths);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t d = 0; d < c.feature_dim(); ++d) {
      EXPECT_DOUBLE_EQ(cp.features.At(i, d), c.features.At(i, d));
    }
    for (size_t d = 0; d < p.feature_dim(); ++d) {
      EXPECT_DOUBLE_EQ(cp.features.At(i, c.feature_dim() + d),
                       p.features.At(i, d));
    }
  }
}

TEST(SpeechTest, Speech3IsHarderByDefault) {
  // Same explicit settings; Speech3's default difficulty shrinks the
  // separations, which shows up as smaller feature magnitudes on the
  // informative dims (per-object noise is identical otherwise).
  SpeechOptions options;
  options.num_objects = 2000;
  options.view = FeatureView::kContextual;
  Dataset s12 = MakeSpeech12(options);
  Dataset s3 = MakeSpeech3(options);
  EXPECT_EQ(s12.num_objects(), s3.num_objects());
  // Structural check: both valid and distinct.
  EXPECT_NE(s12.features.data(), s3.features.data());
}

TEST(FashionTest, DefaultsAndFullScale) {
  FashionOptions options;
  Dataset d = MakeFashion(options);
  EXPECT_EQ(d.num_objects(), 3000u);
  EXPECT_EQ(d.feature_dim(), 64u);
  EXPECT_EQ(d.name, "Fashion");
  options.full_scale = true;
  EXPECT_EQ(MakeFashion(options).num_objects(), 32398u);
}

TEST(FeatureViewSuffixTest, Names) {
  EXPECT_STREQ(FeatureViewSuffix(FeatureView::kContextual), "C");
  EXPECT_STREQ(FeatureViewSuffix(FeatureView::kProsodic), "P");
  EXPECT_STREQ(FeatureViewSuffix(FeatureView::kConcatenated), "CP");
}

}  // namespace
}  // namespace crowdrl::data
