#include "data/dataset.h"

#include <cmath>

#include <gtest/gtest.h>

namespace crowdrl::data {
namespace {

GaussianMixtureOptions SmallOptions() {
  GaussianMixtureOptions options;
  options.num_objects = 400;
  options.view = {10, 2.0, 0.5};
  options.seed = 5;
  return options;
}

TEST(GaussianMixtureTest, ShapesAndLabels) {
  Dataset d = MakeGaussianMixture(SmallOptions());
  EXPECT_EQ(d.num_objects(), 400u);
  EXPECT_EQ(d.feature_dim(), 10u);
  EXPECT_EQ(d.num_classes, 2);
  for (int y : d.truths) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 2);
  }
}

TEST(GaussianMixtureTest, RoughlyBalancedClasses) {
  Dataset d = MakeGaussianMixture(SmallOptions());
  int positives = 0;
  for (int y : d.truths) positives += y;
  EXPECT_GT(positives, 140);
  EXPECT_LT(positives, 260);
}

TEST(GaussianMixtureTest, Deterministic) {
  Dataset a = MakeGaussianMixture(SmallOptions());
  Dataset b = MakeGaussianMixture(SmallOptions());
  EXPECT_EQ(a.truths, b.truths);
  EXPECT_EQ(a.features.data(), b.features.data());
}

TEST(GaussianMixtureTest, SeedChangesData) {
  GaussianMixtureOptions options = SmallOptions();
  Dataset a = MakeGaussianMixture(options);
  options.seed = 6;
  Dataset b = MakeGaussianMixture(options);
  EXPECT_NE(a.features.data(), b.features.data());
}

// The separation knob pins the class-mean Mahalanobis distance: measured
// empirical means of the two classes must be `separation` apart.
TEST(GaussianMixtureTest, SeparationIsCalibrated) {
  GaussianMixtureOptions options = SmallOptions();
  options.num_objects = 20000;
  options.view = {8, 3.0, 0.5};
  Dataset d = MakeGaussianMixture(options);
  std::vector<double> mean0(8, 0.0), mean1(8, 0.0);
  double n0 = 0.0, n1 = 0.0;
  for (size_t i = 0; i < d.num_objects(); ++i) {
    std::vector<double>& mean = d.truths[i] == 0 ? mean0 : mean1;
    (d.truths[i] == 0 ? n0 : n1) += 1.0;
    for (size_t k = 0; k < 8; ++k) mean[k] += d.features.At(i, k);
  }
  double dist2 = 0.0;
  for (size_t k = 0; k < 8; ++k) {
    dist2 += std::pow(mean0[k] / n0 - mean1[k] / n1, 2.0);
  }
  EXPECT_NEAR(std::sqrt(dist2), 3.0, 0.15);
}

TEST(GaussianMixtureTest, UninformativeDimsHaveZeroMeanGap) {
  GaussianMixtureOptions options = SmallOptions();
  options.num_objects = 20000;
  options.view = {4, 3.0, 0.5};  // Dims 2, 3 carry no signal.
  Dataset d = MakeGaussianMixture(options);
  double gap = 0.0;
  double n0 = 0.0, n1 = 0.0, sum0 = 0.0, sum1 = 0.0;
  for (size_t i = 0; i < d.num_objects(); ++i) {
    if (d.truths[i] == 0) {
      sum0 += d.features.At(i, 3);
      n0 += 1.0;
    } else {
      sum1 += d.features.At(i, 3);
      n1 += 1.0;
    }
  }
  gap = std::fabs(sum0 / n0 - sum1 / n1);
  EXPECT_LT(gap, 0.06);
}

TEST(SubsampleTest, KeepsRequestedFraction) {
  Dataset d = MakeGaussianMixture(SmallOptions());
  Rng rng(9);
  Dataset half = Subsample(d, 0.5, &rng);
  EXPECT_EQ(half.num_objects(), 200u);
  EXPECT_EQ(half.feature_dim(), d.feature_dim());
  EXPECT_NE(half.name.find("@0.50"), std::string::npos);
}

TEST(SubsampleTest, FullRatioKeepsAll) {
  Dataset d = MakeGaussianMixture(SmallOptions());
  Rng rng(9);
  Dataset full = Subsample(d, 1.0, &rng);
  EXPECT_EQ(full.num_objects(), d.num_objects());
}

TEST(SelectTest, PreservesRowsAndTruths) {
  Dataset d = MakeGaussianMixture(SmallOptions());
  Dataset sel = Select(d, {5, 17, 300}, "-sel");
  ASSERT_EQ(sel.num_objects(), 3u);
  EXPECT_EQ(sel.truths[1], d.truths[17]);
  EXPECT_EQ(sel.features.RowVector(2), d.features.RowVector(300));
  EXPECT_EQ(sel.name, d.name + "-sel");
}

TEST(SelectDeathTest, OutOfRangeIndexAborts) {
  Dataset d = MakeGaussianMixture(SmallOptions());
  EXPECT_DEATH(Select(d, {100000}, ""), "");
}

}  // namespace
}  // namespace crowdrl::data
