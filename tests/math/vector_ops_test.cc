#include "math/vector_ops.h"

#include <cmath>

#include <gtest/gtest.h>

namespace crowdrl {
namespace {

TEST(DotTest, Basic) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

TEST(AxpyTest, Basic) {
  std::vector<double> y = {1, 1};
  Axpy(2.0, {3, 4}, &y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
}

TEST(ArgmaxTest, FirstOnTies) {
  EXPECT_EQ(Argmax({1.0, 3.0, 3.0, 2.0}), 1u);
  EXPECT_EQ(Argmax({5.0}), 0u);
}

TEST(LogSumExpTest, MatchesNaiveOnSmallValues) {
  std::vector<double> v = {0.1, 0.2, 0.3};
  double naive = std::log(std::exp(0.1) + std::exp(0.2) + std::exp(0.3));
  EXPECT_NEAR(LogSumExp(v), naive, 1e-12);
}

TEST(LogSumExpTest, StableOnLargeValues) {
  std::vector<double> v = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(v), 1000.0 + std::log(2.0), 1e-9);
  std::vector<double> w = {-1000.0, -1000.0};
  EXPECT_NEAR(LogSumExp(w), -1000.0 + std::log(2.0), 1e-9);
}

TEST(SoftmaxTest, SumsToOne) {
  std::vector<double> p = Softmax({1.0, 2.0, 3.0});
  double sum = 0.0;
  for (double x : p) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(SoftmaxTest, InvariantToShift) {
  std::vector<double> a = Softmax({1.0, 2.0});
  std::vector<double> b = Softmax({101.0, 102.0});
  EXPECT_NEAR(a[0], b[0], 1e-12);
}

TEST(EntropyTest, UniformIsLogC) {
  EXPECT_NEAR(Entropy({0.5, 0.5}), std::log(2.0), 1e-12);
  EXPECT_NEAR(Entropy({0.25, 0.25, 0.25, 0.25}), std::log(4.0), 1e-12);
}

TEST(EntropyTest, DegenerateIsZero) {
  EXPECT_DOUBLE_EQ(Entropy({1.0, 0.0}), 0.0);
}

TEST(NormalizeL1Test, Scales) {
  std::vector<double> v = {1.0, 3.0};
  NormalizeL1(&v);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

TEST(NormalizeL1Test, ZeroSumBecomesUniform) {
  std::vector<double> v = {0.0, 0.0, 0.0, 0.0};
  NormalizeL1(&v);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.25);
}

TEST(ClipTest, Clamps) {
  std::vector<double> v = {-5.0, 0.5, 5.0};
  Clip(&v, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.5);
  EXPECT_DOUBLE_EQ(v[2], 1.0);
}

TEST(TopTwoGapTest, Basic) {
  EXPECT_DOUBLE_EQ(TopTwoGap({0.9, 0.1}), 0.8);
  EXPECT_DOUBLE_EQ(TopTwoGap({0.2, 0.5, 0.3}), 0.2);
  EXPECT_DOUBLE_EQ(TopTwoGap({0.5, 0.5}), 0.0);
}

}  // namespace
}  // namespace crowdrl
