#include "math/backend.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "math/gemm.h"
#include "math/matrix.h"
#include "nn/mlp.h"
#include "tests/testing/reference_gemm.h"
#include "util/random.h"

namespace crowdrl::math {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed,
                    double scale = 1.0) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m.At(r, c) = (rng.Uniform() * 2.0 - 1.0) * scale;
    }
  }
  return m;
}

double RowL1(const Matrix& m, size_t r) {
  double sum = 0.0;
  for (size_t c = 0; c < m.cols(); ++c) sum += std::abs(m.At(r, c));
  return sum;
}

// Per-output-channel scale exactly as QuantizedCpuBackend packs it.
double ChannelScale(const Matrix& weight, size_t j) {
  double maxabs = 0.0;
  for (size_t t = 0; t < weight.cols(); ++t) {
    maxabs = std::max(maxabs, std::abs(weight.At(j, t)));
  }
  return maxabs > 0.0 ? maxabs / 127.0 : 1.0;
}

// Shape edge cases every backend's dense ops must handle.
struct Shape {
  size_t m, k, n;
};
const Shape kShapes[] = {
    {0, 4, 3}, {1, 1, 1}, {1, 7, 5},  {5, 1, 4},
    {4, 5, 1}, {9, 3, 8}, {3, 17, 2}, {33, 12, 9},
};

TEST(BackendRegistry, ListsBothKindsAndCreatesThem) {
  const std::vector<BackendKind>& kinds = RegisteredBackendKinds();
  ASSERT_EQ(kinds.size(), 2u);
  for (BackendKind kind : kinds) {
    std::unique_ptr<Backend> backend = CreateBackend(kind);
    ASSERT_NE(backend, nullptr);
    EXPECT_STREQ(backend->Name(), BackendKindName(kind));
  }
}

TEST(BackendRegistry, SimdTierMatchesGemmProbe) {
  EXPECT_STREQ(SimdTierName(ActiveSimdTier()), gemm::SimdTierName());
  Backend* reference = ReferenceBackend();
  EXPECT_STREQ(reference->SimdTierName(), gemm::SimdTierName());
}

TEST(BackendRegistry, NumericsTokensDistinguishKinds) {
  std::unique_ptr<Backend> reference = CreateBackend(BackendKind::kReference);
  std::unique_ptr<Backend> quantized =
      CreateBackend(BackendKind::kQuantizedInt8);
  EXPECT_NE(reference->NumericsToken(), quantized->NumericsToken());
  EXPECT_EQ(reference->NumericsToken(),
            ReferenceBackend()->NumericsToken());
}

// The default dense ops of every registered backend delegate to the gemm
// kernels, which are pinned bit-for-bit against the seed loops.
TEST(BackendConformance, DenseOpsBitEqualReferenceOnEveryKind) {
  for (BackendKind kind : RegisteredBackendKinds()) {
    std::unique_ptr<Backend> backend = CreateBackend(kind);
    for (const Shape& s : kShapes) {
      Matrix a = RandomMatrix(s.m, s.k, 11 + s.m * 31 + s.k);
      Matrix b = RandomMatrix(s.k, s.n, 23 + s.n);
      Matrix expected = testing::ReferenceMatMul(a, b);
      Matrix out;
      backend->MatMulInto(a, b, &out);
      EXPECT_TRUE(testing::BitEqual(out, expected))
          << backend->Name() << " MatMul " << s.m << "x" << s.k << "x"
          << s.n;

      Matrix bt = testing::ReferenceTransposed(b);  // n x k
      Matrix out_nt;
      backend->MatMulNTInto(a, bt, &out_nt);
      EXPECT_TRUE(testing::BitEqual(out_nt, expected))
          << backend->Name() << " MatMulNT " << s.m << "x" << s.k << "x"
          << s.n;

      Matrix at = testing::ReferenceTransposed(a);  // k x m
      Matrix out_tn;
      backend->MatMulTNInto(at, b, &out_tn);
      EXPECT_TRUE(testing::BitEqual(out_tn, expected))
          << backend->Name() << " MatMulTN " << s.m << "x" << s.k << "x"
          << s.n;
    }
  }
}

TEST(BackendConformance, VectorOpsMatchNaiveLoops) {
  for (BackendKind kind : RegisteredBackendKinds()) {
    std::unique_ptr<Backend> backend = CreateBackend(kind);
    std::vector<double> x = {1.0, -2.5, 3.0, 0.0, 7.25};
    std::vector<double> y = {0.5, 1.5, -1.0, 2.0, -3.0};
    std::vector<double> y2 = y;
    backend->Axpy(2.0, x.data(), y2.data(), x.size());
    double expected_dot = 0.0;
    double expected_maxdiff = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      EXPECT_DOUBLE_EQ(y2[i], y[i] + 2.0 * x[i]) << backend->Name();
      expected_dot += x[i] * y[i];
      expected_maxdiff = std::max(expected_maxdiff, std::abs(x[i] - y[i]));
    }
    EXPECT_DOUBLE_EQ(backend->Dot(x.data(), y.data(), x.size()),
                     expected_dot);
    EXPECT_DOUBLE_EQ(backend->MaxAbsDiff(x.data(), y.data(), x.size()),
                     expected_maxdiff);
  }
}

TEST(BackendConformance, ReferenceLinearNTBitEqualGemm) {
  Backend* backend = ReferenceBackend();
  for (const Shape& s : kShapes) {
    Matrix acts = RandomMatrix(s.m, s.k, 101 + s.m);
    Matrix weight = RandomMatrix(s.n, s.k, 202 + s.n);
    Matrix expected;
    gemm::MatMulNTInto(acts, weight, &expected);
    Matrix out;
    backend->LinearNT(acts, weight, {nullptr, 0, 0}, &out, nullptr, nullptr,
                      nullptr);
    EXPECT_TRUE(testing::BitEqual(out, expected))
        << "LinearNT " << s.m << "x" << s.k << "x" << s.n;
  }
}

// Every quantized LinearNT element must satisfy the documented bound
// |out - ref| <= guard_slack * 0.51 * scale_j * ||acts_row||_1 + floor.
TEST(QuantizedBackend, LinearNTWithinElementErrorBound) {
  QuantizedBackendOptions options;
  QuantizedCpuBackend backend(options);
  for (const Shape& s : kShapes) {
    Matrix acts = RandomMatrix(s.m, s.k, 301 + s.m, 3.0);
    Matrix weight = RandomMatrix(s.n, s.k, 402 + s.n, 2.0);
    Matrix expected;
    gemm::MatMulNTInto(acts, weight, &expected);
    Matrix out;
    WeightTag tag{&backend, static_cast<uint32_t>(s.n),
                  NextWeightVersion()};
    backend.LinearNT(acts, weight, tag, &out, nullptr, nullptr, nullptr);
    ASSERT_EQ(out.rows(), expected.rows());
    ASSERT_EQ(out.cols(), expected.cols());
    for (size_t r = 0; r < out.rows(); ++r) {
      const double l1 = RowL1(acts, r);
      for (size_t j = 0; j < out.cols(); ++j) {
        const double bound = QuantizedCpuBackend::ElementErrorBound(
            ChannelScale(weight, j), l1, options);
        EXPECT_LE(std::abs(out.At(r, j) - expected.At(r, j)), bound)
            << s.m << "x" << s.k << "x" << s.n << " at (" << r << "," << j
            << ")";
      }
    }
  }
  EXPECT_FALSE(backend.FellBack());
  EXPECT_EQ(backend.stats().fallbacks, 0u);
}

// Identity activations dequantize the weights: the round-trip error of
// each stored value is at most half an int8 step times its channel scale.
TEST(QuantizedBackend, RoundTripErrorWithinHalfStep) {
  QuantizedCpuBackend backend;
  const size_t k = 24, n = 7;
  Matrix weight = RandomMatrix(n, k, 777, 5.0);
  Matrix identity = Matrix::Identity(k);
  Matrix out;
  backend.LinearNT(identity, weight, {&backend, 1, NextWeightVersion()},
                   &out, nullptr, nullptr, nullptr);
  // out(t, j) = dequantized weight(j, t).
  for (size_t j = 0; j < n; ++j) {
    const double half_step = 0.5 * ChannelScale(weight, j);
    for (size_t t = 0; t < k; ++t) {
      EXPECT_LE(std::abs(out.At(t, j) - weight.At(j, t)),
                half_step + 1e-9)
          << "channel " << j << " col " << t;
    }
  }
}

TEST(QuantizedBackend, PacksOncePerVersionAndRepacksOnChange) {
  QuantizedCpuBackend backend;
  Matrix acts = RandomMatrix(6, 10, 31);
  Matrix weight = RandomMatrix(4, 10, 32);
  const int owner = 0;
  WeightTag tag{&owner, 0, NextWeightVersion()};
  Matrix out;
  backend.LinearNT(acts, weight, tag, &out, nullptr, nullptr, nullptr);
  backend.LinearNT(acts, weight, tag, &out, nullptr, nullptr, nullptr);
  EXPECT_EQ(backend.stats().quantizations, 1u);
  EXPECT_GT(backend.CachedWeightBytes(), 0u);

  tag.version = NextWeightVersion();  // weights "mutated"
  backend.LinearNT(acts, weight, tag, &out, nullptr, nullptr, nullptr);
  EXPECT_EQ(backend.stats().quantizations, 2u);
}

TEST(QuantizedBackend, GuardTripsPoisonedPackAndFallsBackPermanently) {
  QuantizedBackendOptions options;
  options.guard_period = 1;  // guard every call
  QuantizedCpuBackend backend(options);
  const uint64_t healthy_token = backend.NumericsToken();

  Matrix acts = RandomMatrix(16, 12, 51, 2.0);
  Matrix weight = RandomMatrix(8, 12, 52, 2.0);
  Matrix expected;
  gemm::MatMulNTInto(acts, weight, &expected);

  backend.PoisonForTest();
  Matrix out;
  backend.LinearNT(acts, weight, {&backend, 3, NextWeightVersion()}, &out,
                   nullptr, nullptr, nullptr);
  // The offending call already returns reference results, bit-exact.
  EXPECT_TRUE(testing::BitEqual(out, expected));
  EXPECT_TRUE(backend.FellBack());
  EXPECT_EQ(backend.stats().fallbacks, 1u);
  EXPECT_NE(backend.NumericsToken(), healthy_token);
  EXPECT_GT(backend.stats().last_guard_max_abs_error,
            backend.stats().last_guard_bound);

  // Permanently on the reference path from here on.
  Matrix acts2 = RandomMatrix(5, 12, 61);
  Matrix expected2;
  gemm::MatMulNTInto(acts2, weight, &expected2);
  Matrix out2;
  backend.LinearNT(acts2, weight, {&backend, 3, NextWeightVersion()}, &out2,
                   nullptr, nullptr, nullptr);
  EXPECT_TRUE(testing::BitEqual(out2, expected2));
  EXPECT_EQ(backend.stats().fallbacks, 1u);
}

TEST(QuantizedBackend, HealthyGuardDoesNotTrip) {
  QuantizedBackendOptions options;
  options.guard_period = 1;
  QuantizedCpuBackend backend(options);
  Matrix acts = RandomMatrix(32, 20, 71, 4.0);
  Matrix weight = RandomMatrix(10, 20, 72, 3.0);
  Matrix out;
  for (int call = 0; call < 5; ++call) {
    backend.LinearNT(acts, weight, {&backend, 0, 1}, &out, nullptr, nullptr,
                     nullptr);
  }
  EXPECT_FALSE(backend.FellBack());
  EXPECT_EQ(backend.stats().guard_checks, 5u);
  EXPECT_EQ(backend.stats().fallbacks, 0u);
}

// End to end through the MLP: a quantized member backend changes inference
// numerics within tolerance; clearing it restores bit-identity.
TEST(MlpBackend, QuantizedInferCloseAndRevertsBitExact) {
  Rng rng(9);
  nn::Mlp net({8, 16, 4}, {nn::Activation::kRelu, nn::Activation::kIdentity},
              &rng);
  Matrix batch = RandomMatrix(40, 8, 91);
  Matrix reference_out;
  net.InferInto(batch, nullptr, &reference_out);

  QuantizedCpuBackend quantized;
  net.set_inference_backend(&quantized);
  Matrix quant_out;
  net.InferInto(batch, nullptr, &quant_out);
  ASSERT_EQ(quant_out.rows(), reference_out.rows());
  double max_err = 0.0;
  for (size_t i = 0; i < quant_out.size(); ++i) {
    max_err = std::max(max_err, std::abs(quant_out.data()[i] -
                                         reference_out.data()[i]));
  }
  EXPECT_GT(quantized.stats().forwards, 0u);
  EXPECT_LT(max_err, 0.1);  // loose sanity; the per-layer bound is tested
                            // exactly above

  net.set_inference_backend(nullptr);
  Matrix restored;
  net.InferInto(batch, nullptr, &restored);
  EXPECT_TRUE(testing::BitEqual(restored, reference_out));
}

}  // namespace
}  // namespace crowdrl::math
