#include "math/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace crowdrl {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.5);
  m.At(0, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 4.0);
}

TEST(MatrixTest, EmptyMatrix) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 0.0);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 6.0);
}

TEST(MatrixDeathTest, RaggedRowsAbort) {
  EXPECT_DEATH(Matrix::FromRows({{1, 2}, {3}}), "ragged");
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id.Trace(), 3.0);
  EXPECT_DOUBLE_EQ(id.At(0, 1), 0.0);
}

TEST(MatrixTest, RowAccessAndSet) {
  Matrix m(2, 2);
  m.SetRow(0, {7.0, 8.0});
  EXPECT_EQ(m.RowVector(0), (std::vector<double>{7.0, 8.0}));
  EXPECT_DOUBLE_EQ(m.Row(0)[1], 8.0);
}

TEST(MatrixTest, MatMulHandExample) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50.0);
}

TEST(MatrixTest, MatMulIdentityIsNoop) {
  Rng rng(5);
  Matrix a(3, 3);
  a.FillGaussian(&rng, 0.0, 1.0);
  Matrix b = a.MatMul(Matrix::Identity(3));
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(MatrixTest, MatMulPropagatesNanThroughZeroCoefficients) {
  // The historical inner loop skipped zero coefficients, silently turning
  // 0 * NaN into 0; the kernel-backed product follows IEEE semantics.
  Matrix a = Matrix::FromRows({{0.0, 2.0}});
  Matrix b = Matrix::FromRows({{std::nan(""), 5.0}, {1.0, 1.0}});
  Matrix out = a.MatMul(b);
  EXPECT_TRUE(std::isnan(out.At(0, 0)));
  EXPECT_DOUBLE_EQ(out.At(0, 1), 2.0);
}

TEST(MatrixDeathTest, MatMulShapeMismatchAborts) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_DEATH(a.MatMul(b), "matmul shape mismatch");
}

TEST(MatrixTest, MatVec) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  std::vector<double> y = a.MatVec({1.0, 0.0, -1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Rng rng(9);
  Matrix a(4, 7);
  a.FillUniform(&rng, -1.0, 1.0);
  Matrix tt = a.Transposed().Transposed();
  ASSERT_TRUE(a.SameShape(tt));
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.data()[i], tt.data()[i]);
  }
}

class MatMulPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatMulPropertyTest, TransposeOfProductIsReversedProduct) {
  Rng rng(GetParam());
  Matrix a(3, 5);
  Matrix b(5, 4);
  a.FillGaussian(&rng, 0.0, 1.0);
  b.FillGaussian(&rng, 0.0, 1.0);
  Matrix lhs = a.MatMul(b).Transposed();
  Matrix rhs = b.Transposed().MatMul(a.Transposed());
  ASSERT_TRUE(lhs.SameShape(rhs));
  for (size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_NEAR(lhs.data()[i], rhs.data()[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatMulPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(MatrixTest, AddAxpyScale) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{10, 20}});
  a.Add(b);
  EXPECT_DOUBLE_EQ(a.At(0, 1), 22.0);
  a.Axpy(0.5, b);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 16.0);
  a.Scale(2.0);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 32.0);
}

TEST(MatrixTest, TraceOfNonSquareUsesMinDim) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_DOUBLE_EQ(m.Trace(), 6.0);  // 1 + 5.
}

TEST(MatrixTest, MaxAbs) {
  Matrix m = Matrix::FromRows({{1, -9}, {3, 4}});
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 9.0);
}

TEST(MatrixTest, FillGaussianStatistics) {
  Rng rng(13);
  Matrix m(100, 100);
  m.FillGaussian(&rng, 1.0, 2.0);
  double sum = 0.0;
  for (double v : m.data()) sum += v;
  EXPECT_NEAR(sum / static_cast<double>(m.size()), 1.0, 0.1);
}

}  // namespace
}  // namespace crowdrl
