#include "math/stats.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace crowdrl {
namespace {

TEST(StatsTest, MeanVarianceKnownValues) {
  std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(Variance(v), 4.0);
  EXPECT_DOUBLE_EQ(Stddev(v), 2.0);
}

TEST(StatsTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({42.0}), 0.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(OnlineStatsTest, TracksMinMaxCount) {
  OnlineStats s;
  s.Add(3.0);
  s.Add(-1.0);
  s.Add(10.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
}

class OnlineStatsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OnlineStatsPropertyTest, MatchesBatchComputation) {
  Rng rng(GetParam());
  std::vector<double> samples(500);
  OnlineStats online;
  for (double& x : samples) {
    x = rng.Gaussian(3.0, 2.0);
    online.Add(x);
  }
  EXPECT_NEAR(online.mean(), Mean(samples), 1e-9);
  EXPECT_NEAR(online.variance(), Variance(samples), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineStatsPropertyTest,
                         ::testing::Values(1, 7, 13, 99));

}  // namespace
}  // namespace crowdrl
