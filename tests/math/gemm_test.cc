#include "math/gemm.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "math/matrix.h"
#include "tests/testing/reference_gemm.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace crowdrl::gemm {
namespace {

using ::crowdrl::testing::BitEqual;
using ::crowdrl::testing::ReferenceMatMul;
using ::crowdrl::testing::ReferenceTransposed;

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  m.FillUniform(rng, -1.0, 1.0);
  return m;
}

/// Shapes chosen to hit every tiling edge: scalars, single rows/columns,
/// sizes below/at/above the 4-row unroll, and sizes that are not multiples
/// of any tile dimension (tiles are 512/512 for NN, 16/256 for TN).
struct Shape {
  size_t m, k, n;
};

const Shape kOddShapes[] = {
    {1, 1, 1},   {1, 1, 7},    {1, 9, 1},    {3, 1, 5},
    {2, 3, 4},   {4, 4, 4},    {5, 5, 5},    {7, 13, 3},
    {17, 31, 9}, {64, 64, 64}, {65, 33, 67}, {130, 600, 19},
};

TEST(GemmTest, MatMulIntoMatchesReferenceBitwise) {
  Rng rng(11);
  for (const Shape& s : kOddShapes) {
    Matrix a = RandomMatrix(s.m, s.k, &rng);
    Matrix b = RandomMatrix(s.k, s.n, &rng);
    Matrix out;
    MatMulInto(a, b, &out);
    EXPECT_TRUE(BitEqual(out, ReferenceMatMul(a, b)))
        << "shape " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmTest, MatMulNTMatchesReferenceBitwise) {
  Rng rng(12);
  for (const Shape& s : kOddShapes) {
    Matrix a = RandomMatrix(s.m, s.k, &rng);
    Matrix b = RandomMatrix(s.n, s.k, &rng);  // C = A * B^T
    Matrix got = MatMulNT(a, b);
    EXPECT_TRUE(BitEqual(got, ReferenceMatMul(a, ReferenceTransposed(b))))
        << "shape " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmTest, MatMulTNMatchesReferenceBitwise) {
  Rng rng(13);
  for (const Shape& s : kOddShapes) {
    Matrix a = RandomMatrix(s.k, s.m, &rng);  // C = A^T * B
    Matrix b = RandomMatrix(s.k, s.n, &rng);
    Matrix got = MatMulTN(a, b);
    EXPECT_TRUE(BitEqual(got, ReferenceMatMul(ReferenceTransposed(a), b)))
        << "shape " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmTest, MatchesReferenceOnSparseInputs) {
  // Post-ReLU operands are ~half exact zeros; the reference's historical
  // zero-skip must still agree bit for bit with the dense kernels.
  Rng rng(14);
  Matrix a = RandomMatrix(33, 70, &rng);
  Matrix b = RandomMatrix(70, 21, &rng);
  for (size_t i = 0; i < a.data().size(); i += 2) a.data()[i] = 0.0;
  Matrix out;
  MatMulInto(a, b, &out);
  EXPECT_TRUE(BitEqual(out, ReferenceMatMul(a, b)));
}

TEST(GemmTest, LargeShapeCrossesAllTileBoundaries) {
  // Bigger than one NN j-tile (512) and k-panel (512) in every dimension
  // that matters, and deliberately off any multiple of 4 or 64.
  Rng rng(15);
  Matrix a = RandomMatrix(131, 515, &rng);
  Matrix b = RandomMatrix(515, 517, &rng);
  Matrix out;
  MatMulInto(a, b, &out);
  EXPECT_TRUE(BitEqual(out, ReferenceMatMul(a, b)));

  Matrix bt = RandomMatrix(517, 515, &rng);
  EXPECT_TRUE(
      BitEqual(MatMulNT(a, bt), ReferenceMatMul(a, ReferenceTransposed(bt))));
  Matrix at = RandomMatrix(515, 131, &rng);
  EXPECT_TRUE(BitEqual(MatMulTN(at, b),
                       ReferenceMatMul(ReferenceTransposed(at), b)));
}

TEST(GemmTest, ZeroInnerDimensionYieldsZeros) {
  Matrix a(3, 0);
  Matrix b(0, 4);
  Matrix out;
  MatMulInto(a, b, &out);
  ASSERT_EQ(out.rows(), 3u);
  ASSERT_EQ(out.cols(), 4u);
  for (double v : out.data()) EXPECT_EQ(v, 0.0);
}

TEST(GemmTest, NanAndInfPropagate) {
  // Unlike the historical zero-skip loop, 0 * NaN and 0 * Inf now follow
  // IEEE semantics like every other dense path.
  Matrix a = Matrix::FromRows({{0.0, 1.0}});
  Matrix b = Matrix::FromRows({{std::nan(""), 1.0}, {2.0, 3.0}});
  Matrix out;
  MatMulInto(a, b, &out);
  EXPECT_TRUE(std::isnan(out.At(0, 0)));
  EXPECT_EQ(out.At(0, 1), 3.0);

  Matrix inf_b = Matrix::FromRows({{INFINITY, 1.0}, {2.0, 3.0}});
  MatMulInto(a, inf_b, &out);
  EXPECT_TRUE(std::isnan(out.At(0, 0)));  // 0 * inf = NaN
}

TEST(GemmTest, TransposeIntoRoundTrips) {
  Rng rng(16);
  Matrix m = RandomMatrix(7, 13, &rng);
  Matrix t;
  TransposeInto(m, &t);
  EXPECT_TRUE(BitEqual(t, ReferenceTransposed(m)));
  Matrix back;
  TransposeInto(t, &back);
  EXPECT_TRUE(BitEqual(back, m));
}

TEST(GemmTest, ThreadedMatchesSerialBitwise) {
  // The parallel-scoring invariant (threads never change results), pushed
  // down to the kernel layer: row chunks are disjoint, so any thread count
  // must be byte-identical to serial.
  Rng rng(17);
  const Shape shapes[] = {{1, 5, 3}, {63, 40, 17}, {64, 80, 33},
                          {65, 80, 33}, {200, 129, 70}, {513, 64, 8}};
  for (size_t threads : {2, 4}) {
    ThreadPool pool(threads);
    for (const Shape& s : shapes) {
      Matrix a = RandomMatrix(s.m, s.k, &rng);
      Matrix b = RandomMatrix(s.k, s.n, &rng);
      Matrix serial, threaded;
      MatMulInto(a, b, &serial);
      MatMulInto(a, b, &threaded, &pool);
      EXPECT_TRUE(BitEqual(serial, threaded))
          << "NN threads=" << threads << " m=" << s.m;

      Matrix bt = RandomMatrix(s.n, s.k, &rng);
      Matrix nt_serial, nt_threaded;
      MatMulNTInto(a, bt, &nt_serial);
      MatMulNTInto(a, bt, &nt_threaded, &pool);
      EXPECT_TRUE(BitEqual(nt_serial, nt_threaded))
          << "NT threads=" << threads << " m=" << s.m;

      Matrix at = RandomMatrix(s.k, s.m, &rng);
      Matrix tn_serial, tn_threaded;
      MatMulTNInto(at, b, &tn_serial);
      MatMulTNInto(at, b, &tn_threaded, &pool);
      EXPECT_TRUE(BitEqual(tn_serial, tn_threaded))
          << "TN threads=" << threads << " m=" << s.m;
    }
  }
}

TEST(GemmTest, EpilogueSeesEveryRowExactlyOnce) {
  Rng rng(18);
  Matrix a = RandomMatrix(150, 20, &rng);
  Matrix b = RandomMatrix(7, 20, &rng);
  std::vector<int> visits(a.rows(), 0);
  Matrix out;
  MatMulNTInto(a, b, &out, nullptr, [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      ++visits[r];
      double* row = out.Row(r);
      for (size_t c = 0; c < out.cols(); ++c) row[c] += 1.0;
    }
  });
  for (int v : visits) EXPECT_EQ(v, 1);
  // The epilogue ran after the product: out == A*B^T + 1 everywhere.
  Matrix expect = ReferenceMatMul(a, ReferenceTransposed(b));
  for (size_t i = 0; i < expect.data().size(); ++i) {
    EXPECT_DOUBLE_EQ(out.data()[i], expect.data()[i] + 1.0);
  }
}

TEST(GemmTest, OutputBufferIsReusedAcrossCalls) {
  Rng rng(19);
  Matrix a = RandomMatrix(9, 6, &rng);
  Matrix b = RandomMatrix(6, 5, &rng);
  Matrix out;
  MatMulInto(a, b, &out);
  const double* storage = out.data().data();
  MatMulInto(a, b, &out);  // Same shape: no reallocation.
  EXPECT_EQ(out.data().data(), storage);
  EXPECT_TRUE(BitEqual(out, ReferenceMatMul(a, b)));
  // Stale contents from a previous call must not leak into the result.
  Matrix c = RandomMatrix(6, 5, &rng);
  MatMulInto(a, c, &out);
  EXPECT_TRUE(BitEqual(out, ReferenceMatMul(a, c)));
}

TEST(GemmTest, PersistentScratchMatchesThreadLocalFallback) {
  Rng rng(20);
  Matrix a = RandomMatrix(21, 30, &rng);
  Matrix b = RandomMatrix(11, 30, &rng);
  Matrix with_scratch, without_scratch, scratch;
  MatMulNTInto(a, b, &with_scratch, nullptr, nullptr, &scratch);
  MatMulNTInto(a, b, &without_scratch);
  EXPECT_TRUE(BitEqual(with_scratch, without_scratch));
  // The scratch holds B^T afterwards and is reused by shape.
  EXPECT_TRUE(BitEqual(scratch, ReferenceTransposed(b)));
}

TEST(GemmTest, SimdTierNameIsKnown) {
  const std::string tier = SimdTierName();
  EXPECT_TRUE(tier == "portable" || tier == "avx2" || tier == "avx512")
      << tier;
}

TEST(GemmDeathTest, ShapeMismatchAborts) {
  Matrix a(2, 3);
  Matrix b(4, 2);
  Matrix out;
  EXPECT_DEATH(MatMulInto(a, b, &out), "matmul shape mismatch");
  EXPECT_DEATH(MatMulNT(a, a.Transposed()), "matmul shape mismatch");
  EXPECT_DEATH(MatMulTN(a, b), "matmul shape mismatch");
}

}  // namespace
}  // namespace crowdrl::gemm
