// Flight-recorder contract tests: ring wraparound, scope registration,
// concurrent writers, the dump/decode round trip, CRC rejection of
// truncated dumps, and the fatal-signal hook (a death test whose dump
// tail must explain the crash).

#include "obs/flight_recorder.h"

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/flight_dump.h"
#include "obs/metrics.h"

namespace crowdrl::obs {
namespace {

// Every test reconfigures the process-wide recorder from scratch and
// leaves the global switches off afterwards.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::Get().ResetForTesting();
    SetEnabled(true);
  }
  void TearDown() override {
    FlightRecorder::Get().ResetForTesting();
    SetEnabled(false);
  }
};

TEST_F(FlightRecorderTest, AppendIsNoOpUntilConfigured) {
  EXPECT_FALSE(FlightRecorder::Get().configured());
  EXPECT_FALSE(FlightEnabled());
  RecordFlightEvent(FlightEventType::kDrain);
  EXPECT_EQ(FlightRecorder::Get().total_appended(), 0u);
}

TEST_F(FlightRecorderTest, WraparoundKeepsNewestCapacityEvents) {
  FlightRecorder& rec = FlightRecorder::Get();
  rec.Configure(8);
  ASSERT_TRUE(FlightEnabled());
  for (uint64_t i = 0; i < 20; ++i) {
    rec.Append(FlightEventType::kCheckpoint, 0, /*a=*/i);
  }
  EXPECT_EQ(rec.total_appended(), 20u);
  std::vector<FlightEventRecord> events = rec.OrderedEvents();
  ASSERT_EQ(events.size(), 8u);  // Ring capacity, oldest 12 overwritten.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 12 + i);  // Oldest surviving append is #12.
    EXPECT_EQ(events[i].type,
              static_cast<uint16_t>(FlightEventType::kCheckpoint));
  }
}

TEST_F(FlightRecorderTest, ScopeRegistrationIsIdempotentAndBounded) {
  FlightRecorder& rec = FlightRecorder::Get();
  rec.Configure(8);
  const uint16_t a = rec.RegisterScope("campaign-a");
  const uint16_t b = rec.RegisterScope("campaign-b");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(rec.RegisterScope("campaign-a"), a);
  EXPECT_STREQ(rec.scope_name(a), "campaign-a");
  EXPECT_STREQ(rec.scope_name(0), "");  // Process scope.
}

TEST_F(FlightRecorderTest, ConfigureIsEnableOnlyFirstCapacityWins) {
  FlightRecorder& rec = FlightRecorder::Get();
  rec.Configure(8);
  rec.Configure(1024);  // Ignored: the first ring stays.
  EXPECT_EQ(rec.capacity(), 8u);
}

TEST_F(FlightRecorderTest, ConcurrentWritersLoseNoEvents) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  FlightRecorder& rec = FlightRecorder::Get();
  rec.Configure(kThreads * kPerThread);  // No wraparound: count everything.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        rec.Append(FlightEventType::kSessionConnect,
                   static_cast<uint16_t>(t), i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // All writers joined, so no slot is torn and every append survived.
  EXPECT_EQ(rec.total_appended(), kThreads * kPerThread);
  std::vector<FlightEventRecord> events = rec.OrderedEvents();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  std::vector<uint64_t> per_thread(kThreads, 0);
  for (const FlightEventRecord& ev : events) {
    ASSERT_LT(ev.scope, kThreads);
    ++per_thread[ev.scope];
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(per_thread[t], kPerThread);
}

TEST_F(FlightRecorderTest, DumpDecodeRoundTrip) {
  FlightRecorder& rec = FlightRecorder::Get();
  rec.Configure(8);
  const uint16_t scope = rec.RegisterScope("roundtrip");
  for (uint64_t i = 0; i < 20; ++i) {
    rec.Append(FlightEventType::kTiSwap, scope, /*a=*/i, /*b=*/i * 2);
  }
  const std::string path =
      ::testing::TempDir() + "crowdrl_flight_roundtrip.dump";
  ASSERT_TRUE(io::DumpFlightRecorder(path.c_str()));

  io::FlightDump dump;
  ASSERT_TRUE(io::ReadFlightDump(path, &dump).ok());
  EXPECT_EQ(dump.payload_version, io::kFlightDumpPayloadVersion);
  EXPECT_EQ(dump.total_appended, 20u);
  EXPECT_EQ(dump.capacity, 8u);
  EXPECT_EQ(dump.event_size, sizeof(FlightEventRecord));
  EXPECT_EQ(dump.first_index, 12u);
  ASSERT_EQ(dump.events.size(), 8u);
  for (size_t i = 0; i < dump.events.size(); ++i) {
    const io::FlightDumpEvent& ev = dump.events[i];
    EXPECT_FALSE(ev.torn);
    EXPECT_EQ(ev.index, 12 + i);
    EXPECT_EQ(ev.a, 12 + i);
    EXPECT_EQ(ev.b, (12 + i) * 2);
    EXPECT_EQ(dump.TypeName(ev.type), "ti_swap");
    EXPECT_EQ(dump.ScopeName(ev.scope), "roundtrip");
  }
  // Ids beyond the recorded tables still print, numerically.
  EXPECT_EQ(dump.TypeName(9999), "type#9999");
  EXPECT_EQ(dump.ScopeName(0), "process");
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, TruncatedDumpFailsCrc) {
  FlightRecorder& rec = FlightRecorder::Get();
  rec.Configure(8);
  for (uint64_t i = 0; i < 6; ++i) {
    rec.Append(FlightEventType::kCheckpoint, 0, i);
  }
  const std::string path =
      ::testing::TempDir() + "crowdrl_flight_truncate.dump";
  ASSERT_TRUE(io::DumpFlightRecorder(path.c_str()));

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 16u);

  // Cut mid-events: the container CRC must reject the file outright
  // rather than decode a partial ring.
  const std::string truncated_path = path + ".truncated";
  std::ofstream out(truncated_path, std::ios::binary);
  out.write(bytes.data(),
            static_cast<std::streamsize>(bytes.size() - 16));
  out.close();
  io::FlightDump dump;
  EXPECT_FALSE(io::ReadFlightDump(truncated_path, &dump).ok());

  // A flipped bit anywhere fails the same way.
  const std::string corrupt_path = path + ".corrupt";
  bytes[bytes.size() / 2] ^= 0x20;
  std::ofstream out2(corrupt_path, std::ios::binary);
  out2.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out2.close();
  EXPECT_FALSE(io::ReadFlightDump(corrupt_path, &dump).ok());

  std::remove(path.c_str());
  std::remove(truncated_path.c_str());
  std::remove(corrupt_path.c_str());
}

TEST_F(FlightRecorderTest, ReadMissingFileIsAnError) {
  io::FlightDump dump;
  EXPECT_FALSE(
      io::ReadFlightDump("/nonexistent/flight.dump", &dump).ok());
}

using FlightRecorderDeathTest = FlightRecorderTest;

TEST_F(FlightRecorderDeathTest, FatalSignalDumpTailExplainsTheCrash) {
  const std::string path = ::testing::TempDir() + "crowdrl_flight_fatal.dump";
  std::remove(path.c_str());
  // The child configures the ring, records a short campaign history,
  // installs the hook, and dies of SIGSEGV. The handler must persist the
  // ring and re-raise so the child still dies of SIGSEGV.
  EXPECT_EXIT(
      {
        SetEnabled(true);
        FlightRecorder& rec = FlightRecorder::Get();
        rec.Configure(64);
        const uint16_t scope = rec.RegisterScope("crashing-campaign");
        RecordFlightEvent(FlightEventType::kCampaignStart, scope);
        RecordFlightEvent(FlightEventType::kTiSnapshot, scope, /*a=*/3);
        io::InstallFatalSignalHook(path.c_str());
        std::raise(SIGSEGV);
      },
      ::testing::KilledBySignal(SIGSEGV), "");

  io::FlightDump dump;
  ASSERT_TRUE(io::ReadFlightDump(path, &dump).ok());
  ASSERT_GE(dump.events.size(), 3u);
  // The tail reads as a narrative: campaign started, snapshot taken,
  // then the fatal signal — with the signal number in the payload.
  const io::FlightDumpEvent& last = dump.events.back();
  EXPECT_FALSE(last.torn);
  EXPECT_EQ(dump.TypeName(last.type), "fatal_signal");
  EXPECT_EQ(last.a, static_cast<uint64_t>(SIGSEGV));
  EXPECT_EQ(dump.TypeName(dump.events[dump.events.size() - 2].type),
            "ti_snapshot");
  EXPECT_EQ(dump.ScopeName(dump.events[dump.events.size() - 2].scope),
            "crashing-campaign");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace crowdrl::obs
