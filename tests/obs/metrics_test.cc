// MetricsRegistry contract tests: histogram bucket boundaries, counter
// wrap-around, concurrent-increment exactness, snapshot JSON shape, the
// enabled/disabled gate, and the JSONL sink.

#include "obs/metrics.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tests/testing/mini_json.h"

namespace crowdrl::obs {
namespace {

using crowdrl::testing::JsonValue;
using crowdrl::testing::MiniJsonParser;

// Every test runs with hooks enabled and a clean slate, and leaves the
// process-wide switches off so unrelated tests keep the zero-overhead
// default.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    MetricsRegistry::Get().ResetAll();
  }
  void TearDown() override {
    MetricsRegistry::Get().ResetAll();
    SetTracing(false);
    SetEnabled(false);
  }
};

TEST_F(MetricsTest, CounterCountsAndResets) {
  Counter* c = MetricsRegistry::Get().GetCounter("test.counter.basic");
  EXPECT_EQ(c->value(), 0u);
  c->Inc();
  c->Inc(41);
  EXPECT_EQ(c->value(), 42u);
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
}

TEST_F(MetricsTest, CounterWrapsModulo2To64) {
  Counter* c = MetricsRegistry::Get().GetCounter("test.counter.wrap");
  c->Inc(std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(c->value(), std::numeric_limits<uint64_t>::max());
  // Unsigned wrap-around, not saturation: a snapshot consumer diffing
  // successive values sees the correct delta through the wrap.
  c->Inc(3);
  EXPECT_EQ(c->value(), 2u);
}

TEST_F(MetricsTest, DisabledHooksMutateNothing) {
  Counter* c = MetricsRegistry::Get().GetCounter("test.counter.gated");
  Gauge* g = MetricsRegistry::Get().GetGauge("test.gauge.gated");
  Histogram* h =
      MetricsRegistry::Get().GetHistogram("test.hist.gated", {1.0, 2.0});
  SetEnabled(false);
  c->Inc(7);
  g->Set(3.5);
  h->Record(1.5);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0.0);
  EXPECT_EQ(h->total_count(), 0u);
  EXPECT_EQ(h->sum(), 0.0);
  SetEnabled(true);
  c->Inc(7);
  EXPECT_EQ(c->value(), 7u);
}

TEST_F(MetricsTest, RegistrationIsIdempotent) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  Counter* c1 = registry.GetCounter("test.counter.same");
  Counter* c2 = registry.GetCounter("test.counter.same");
  EXPECT_EQ(c1, c2);
  Histogram* h1 = registry.GetHistogram("test.hist.same", {1.0, 2.0});
  // Later bounds are ignored: first registration wins.
  Histogram* h2 = registry.GetHistogram("test.hist.same", {5.0});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST_F(MetricsTest, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  Histogram* h = MetricsRegistry::Get().GetHistogram(
      "test.hist.bounds", {1.0, 2.0, 4.0});
  // le-style semantics: a sample lands in the first bucket whose bound is
  // >= the value. Exact-boundary values belong to the lower bucket.
  h->Record(0.5);  // <= 1
  h->Record(1.0);  // <= 1 (boundary)
  h->Record(1.5);  // <= 2
  h->Record(2.0);  // <= 2 (boundary)
  h->Record(4.0);  // <= 4 (boundary)
  h->Record(4.5);  // overflow
  h->Record(-3.0);  // below every bound -> first bucket
  std::vector<uint64_t> counts = h->counts();
  ASSERT_EQ(counts.size(), 4u);  // bounds + overflow.
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h->total_count(), 7u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.5 - 3.0);
}

TEST_F(MetricsTest, ConcurrentIncrementsSumExactly) {
  constexpr int kThreads = 8;
  constexpr uint64_t kIncrementsPerThread = 40000;
  Counter* c = MetricsRegistry::Get().GetCounter("test.counter.mt");
  Histogram* h =
      MetricsRegistry::Get().GetHistogram("test.hist.mt", {0.5});
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c, h] {
      for (uint64_t i = 0; i < kIncrementsPerThread; ++i) {
        c->Inc();
        h->Record(1.0);  // Overflow bucket; integral values, exact sum.
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->value(), kThreads * kIncrementsPerThread);
  EXPECT_EQ(h->total_count(), kThreads * kIncrementsPerThread);
  EXPECT_DOUBLE_EQ(h->sum(),
                   static_cast<double>(kThreads * kIncrementsPerThread));
  std::vector<uint64_t> counts = h->counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[1], kThreads * kIncrementsPerThread);
}

TEST_F(MetricsTest, SnapshotIsSortedAndJsonParses) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetCounter("test.snap.b")->Inc(2);
  registry.GetCounter("test.snap.a")->Inc(1);
  registry.GetGauge("test.snap.gauge")->Set(-1.25);
  registry.GetHistogram("test.snap.hist", {1.0, 10.0})->Record(3.0);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_GE(snapshot.counters.size(), 2u);
  for (size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].name, snapshot.counters[i].name);
  }

  JsonValue root;
  ASSERT_TRUE(MiniJsonParser::Parse(snapshot.ToJson(), &root));
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root["counters"]["test.snap.a"].number, 1.0);
  EXPECT_EQ(root["counters"]["test.snap.b"].number, 2.0);
  EXPECT_EQ(root["gauges"]["test.snap.gauge"].number, -1.25);
  const JsonValue& hist = root["histograms"]["test.snap.hist"];
  ASSERT_TRUE(hist.is_object());
  ASSERT_EQ(hist["bounds"].array.size(), 2u);
  ASSERT_EQ(hist["counts"].array.size(), 3u);
  EXPECT_EQ(hist["counts"].array[1].number, 1.0);
  EXPECT_EQ(hist["sum"].number, 3.0);
  EXPECT_EQ(hist["count"].number, 1.0);
}

TEST_F(MetricsTest, NonFiniteGaugeSerializesAsNull) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetGauge("test.snap.nan")
      ->Set(std::numeric_limits<double>::quiet_NaN());
  JsonValue root;
  ASSERT_TRUE(MiniJsonParser::Parse(registry.Snapshot().ToJson(), &root));
  EXPECT_EQ(root["gauges"]["test.snap.nan"].type,
            JsonValue::Type::kNull);
}

TEST_F(MetricsTest, ResetAllZeroesValuesButKeepsRegistrations) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  Counter* c = registry.GetCounter("test.reset.counter");
  Histogram* h = registry.GetHistogram("test.reset.hist", {1.0});
  c->Inc(5);
  h->Record(0.5);
  registry.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->total_count(), 0u);
  EXPECT_EQ(h->sum(), 0.0);
  // Still registered with the original layout.
  EXPECT_EQ(registry.GetHistogram("test.reset.hist", {99.0}), h);
  EXPECT_EQ(h->bounds(), (std::vector<double>{1.0}));
}

TEST_F(MetricsTest, ApplyOptionsIsEnableOnly) {
  SetEnabled(false);
  SetTracing(false);
  ObsOptions off;  // Defaults: everything disabled.
  ApplyOptions(off);
  EXPECT_FALSE(Enabled());

  ObsOptions on;
  on.enabled = true;
  on.tracing = true;
  ApplyOptions(on);
  EXPECT_TRUE(Enabled());
  EXPECT_TRUE(TracingEnabled());
  // A later default-config ApplyOptions must not silence the hooks.
  ApplyOptions(off);
  EXPECT_TRUE(Enabled());
  EXPECT_TRUE(TracingEnabled());
}

TEST_F(MetricsTest, JsonlWriterEmitsOneParseableRecordPerIteration) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  Counter* c = registry.GetCounter("test.jsonl.counter");
  std::string path = ::testing::TempDir() + "crowdrl_obs_metrics_test.jsonl";

  MetricsJsonlWriter writer;
  ASSERT_TRUE(writer.Open(path));
  ASSERT_TRUE(writer.is_open());
  c->Inc(1);
  writer.WriteRecord(1, registry.Snapshot());
  c->Inc(1);
  writer.WriteRecord(2, registry.Snapshot());
  writer.Close();
  EXPECT_FALSE(writer.is_open());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t records = 0;
  while (std::getline(in, line)) {
    ++records;
    JsonValue root;
    ASSERT_TRUE(MiniJsonParser::Parse(line, &root)) << line;
    EXPECT_EQ(root["iteration"].number, static_cast<double>(records));
    EXPECT_EQ(root["counters"]["test.jsonl.counter"].number,
              static_cast<double>(records));
  }
  EXPECT_EQ(records, 2u);
  std::remove(path.c_str());
}

TEST_F(MetricsTest, JsonlWriterOpenFailsCleanlyOnBadPath) {
  MetricsJsonlWriter writer;
  EXPECT_FALSE(writer.Open("/nonexistent-dir/really/not/here.jsonl"));
  EXPECT_FALSE(writer.is_open());
}

}  // namespace
}  // namespace crowdrl::obs
