// LatencyRecorder / LifecycleRegistry contract tests: geometric bucket
// layout, interpolated-quantile accuracy (exact to one bucket width,
// < +25%), concurrent recording, the enabled gate, and the JSON export
// shape consumed by --lifecycle_json.

#include "obs/lifecycle.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "tests/testing/mini_json.h"

namespace crowdrl::obs {
namespace {

using crowdrl::testing::JsonValue;
using crowdrl::testing::MiniJsonParser;

class LifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    SetLifecycle(true);
    LifecycleRegistry::Get().ResetAll();
  }
  void TearDown() override {
    LifecycleRegistry::Get().ResetAll();
    SetLifecycle(false);
    SetEnabled(false);
  }
};

TEST_F(LifecycleTest, BucketBoundsAreAscendingFromOneMicrosecond) {
  EXPECT_EQ(LatencyRecorder::BucketBoundNs(0), 1000u);
  for (size_t i = 1; i < LatencyRecorder::kNumBounds; ++i) {
    EXPECT_GT(LatencyRecorder::BucketBoundNs(i),
              LatencyRecorder::BucketBoundNs(i - 1));
  }
}

TEST_F(LifecycleTest, CountSumMaxAreExact) {
  LatencyRecorder r;
  r.RecordAlways(1'000);
  r.RecordAlways(2'000);
  r.RecordAlways(500'000);
  EXPECT_EQ(r.count(), 3u);
  EXPECT_EQ(r.sum_ns(), 503'000u);
  EXPECT_EQ(r.max_ns(), 500'000u);
  r.Reset();
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.max_ns(), 0u);
  EXPECT_EQ(r.QuantileUs(0.5), 0.0);  // Empty recorder reads zero.
}

TEST_F(LifecycleTest, QuantilesAreExactToOneBucketWidth) {
  LatencyRecorder r;
  // 1000 samples spread uniformly over [10us, 1000us): the true p50 is
  // ~505us, the true p99 ~990us. The geometric buckets (ratio 1.25)
  // guarantee an estimate within one bucket width of the truth.
  for (uint64_t i = 0; i < 1000; ++i) {
    r.RecordAlways((10 + i * 99 / 100) * 1000);
  }
  const double p50 = r.QuantileUs(0.50);
  const double p99 = r.QuantileUs(0.99);
  EXPECT_GT(p50, 505.0 / 1.25);
  EXPECT_LT(p50, 505.0 * 1.25);
  EXPECT_GT(p99, 990.0 / 1.25);
  EXPECT_LT(p99, 990.0 * 1.25);
  EXPECT_GE(p99, p50);  // Quantiles are monotone in q.
}

TEST_F(LifecycleTest, DisabledGateRecordsNothing) {
  LatencyRecorder r;
  SetLifecycle(false);
  r.Record(1'000'000);
  EXPECT_EQ(r.count(), 0u);
  SetLifecycle(true);
  r.Record(1'000'000);
  EXPECT_EQ(r.count(), 1u);
}

TEST_F(LifecycleTest, ConcurrentRecordingLosesNoSamples) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  LifecycleStats* stats = LifecycleRegistry::Get().GetStats("mt-campaign");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([stats] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        stats->Record(LifecycleStage::kArriveToCommit, 5'000 + (i & 1023));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const LatencyRecorder& r = stats->stage(LifecycleStage::kArriveToCommit);
  EXPECT_EQ(r.count(), kThreads * kPerThread);
  EXPECT_EQ(r.max_ns(), 5'000u + 1023u);
}

TEST_F(LifecycleTest, RegistryIsIdempotentAndStable) {
  LifecycleStats* a = LifecycleRegistry::Get().GetStats("same");
  LifecycleStats* b = LifecycleRegistry::Get().GetStats("same");
  EXPECT_EQ(a, b);
}

TEST_F(LifecycleTest, StageNamesMatchThePipelineOrder) {
  EXPECT_STREQ(LifecycleStageName(LifecycleStage::kDispatchToDeliver),
               "dispatch_deliver");
  EXPECT_STREQ(LifecycleStageName(LifecycleStage::kDeliverToArrive),
               "deliver_arrive");
  EXPECT_STREQ(LifecycleStageName(LifecycleStage::kArriveToCommit),
               "arrive_commit");
  EXPECT_STREQ(LifecycleStageName(LifecycleStage::kCommitToObserve),
               "commit_observe");
}

TEST_F(LifecycleTest, WriteJsonParsesWithAllStagesPerCampaign) {
  LifecycleStats* stats = LifecycleRegistry::Get().GetStats("json-camp");
  for (uint64_t i = 0; i < 100; ++i) {
    stats->Record(LifecycleStage::kDispatchToDeliver, 10'000 + i * 100);
    stats->Record(LifecycleStage::kArriveToCommit, 2'000);
  }
  const std::string path =
      ::testing::TempDir() + "crowdrl_lifecycle_test.json";
  ASSERT_TRUE(LifecycleRegistry::Get().WriteJson(path));

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue root;
  ASSERT_TRUE(MiniJsonParser::Parse(buffer.str(), &root)) << buffer.str();
  const JsonValue& campaigns = root["campaigns"];
  ASSERT_TRUE(campaigns.is_array());
  const JsonValue* camp = nullptr;
  for (const JsonValue& c : campaigns.array) {
    if (c["name"].str == "json-camp") camp = &c;
  }
  ASSERT_NE(camp, nullptr);
  const JsonValue& stages = (*camp)["stages"];
  EXPECT_EQ(stages["dispatch_deliver"]["count"].number, 100.0);
  EXPECT_EQ(stages["arrive_commit"]["count"].number, 100.0);
  EXPECT_EQ(stages["deliver_arrive"]["count"].number, 0.0);
  EXPECT_GT(stages["dispatch_deliver"]["p99_us"].number,
            stages["dispatch_deliver"]["p50_us"].number);
  EXPECT_EQ(stages["commit_observe"]["p50_us"].number, 0.0);
  std::remove(path.c_str());
}

TEST_F(LifecycleTest, SummarizeStageOfEmptyRecorderIsAllZero) {
  LatencyRecorder r;
  const LifecycleSample::StageSample s = SummarizeStage(r);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean_us, 0.0);
  EXPECT_EQ(s.p99_us, 0.0);
  EXPECT_EQ(s.max_us, 0.0);
}

}  // namespace
}  // namespace crowdrl::obs
