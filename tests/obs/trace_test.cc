// TraceRecorder tests: span recording, the tracing gate, the per-thread
// buffer cap, and — the export contract — that the Chrome trace-event
// JSON is well-formed (parsed in-test) with the fields Perfetto needs.

#include "obs/trace.h"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "tests/testing/mini_json.h"

namespace crowdrl::obs {
namespace {

using crowdrl::testing::JsonValue;
using crowdrl::testing::MiniJsonParser;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    SetTracing(true);
    TraceRecorder::Get().Clear();
  }
  void TearDown() override {
    TraceRecorder::Get().Clear();
    SetTracing(false);
    SetEnabled(false);
  }
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST_F(TraceTest, ScopedSpansRecordCompleteEvents) {
  EXPECT_EQ(TraceRecorder::Get().event_count(), 0u);
  {
    CROWDRL_TRACE_SPAN("test.outer");
    { CROWDRL_TRACE_SPAN("test.inner"); }
  }
  EXPECT_EQ(TraceRecorder::Get().event_count(), 2u);
  TraceRecorder::Get().Clear();
  EXPECT_EQ(TraceRecorder::Get().event_count(), 0u);
}

TEST_F(TraceTest, SpansAreNoOpsWhenTracingDisabled) {
  SetTracing(false);
  { CROWDRL_TRACE_SPAN("test.gated"); }
  SetEnabled(false);
  SetTracing(true);  // Tracing requires the master switch too.
  { CROWDRL_TRACE_SPAN("test.gated"); }
  EXPECT_EQ(TraceRecorder::Get().event_count(), 0u);
}

TEST_F(TraceTest, ExportedChromeTraceParsesAndCarriesPerfettoFields) {
  {
    CROWDRL_TRACE_SPAN("test.export \"quoted\"\\name");
    { CROWDRL_TRACE_SPAN("test.child"); }
  }
  std::thread other([] { CROWDRL_TRACE_SPAN("test.other_thread"); });
  other.join();

  std::string path = ::testing::TempDir() + "crowdrl_obs_trace_test.json";
  ASSERT_TRUE(TraceRecorder::Get().WriteChromeTrace(path));

  JsonValue root;
  ASSERT_TRUE(MiniJsonParser::Parse(ReadFile(path), &root));
  ASSERT_TRUE(root.is_object());
  ASSERT_TRUE(root.Has("traceEvents"));
  const JsonValue& events = root["traceEvents"];
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.array.size(), 3u);

  std::set<std::string> names;
  std::set<double> tids;
  for (const JsonValue& event : events.array) {
    ASSERT_TRUE(event.is_object());
    EXPECT_TRUE(event["name"].is_string());
    EXPECT_EQ(event["ph"].str, "X");  // Complete events.
    EXPECT_TRUE(event["ts"].is_number());
    EXPECT_TRUE(event["dur"].is_number());
    EXPECT_GE(event["dur"].number, 0.0);
    EXPECT_TRUE(event["pid"].is_number());
    EXPECT_TRUE(event["tid"].is_number());
    names.insert(event["name"].str);
    tids.insert(event["tid"].number);
  }
  EXPECT_TRUE(names.count("test.child"));
  EXPECT_TRUE(names.count("test.other_thread"));
  // The quoted/backslashed name survived JSON escaping (the parser
  // unescapes it back).
  EXPECT_TRUE(names.count("test.export \"quoted\"\\name"));
  // Two distinct threads recorded, two distinct tids exported.
  EXPECT_EQ(tids.size(), 2u);
  std::remove(path.c_str());
}

TEST_F(TraceTest, NestedSpansOrderedParentAfterChildByEndTime) {
  // The exporter flushes per-thread buffers in recording order: the inner
  // span (which closes first) precedes the outer. Both cover overlapping
  // time ranges — outer.ts <= inner.ts and outer end >= inner end.
  {
    CROWDRL_TRACE_SPAN("test.parent");
    { CROWDRL_TRACE_SPAN("test.kid"); }
  }
  std::string path = ::testing::TempDir() + "crowdrl_obs_trace_nest.json";
  ASSERT_TRUE(TraceRecorder::Get().WriteChromeTrace(path));
  JsonValue root;
  ASSERT_TRUE(MiniJsonParser::Parse(ReadFile(path), &root));
  const auto& events = root["traceEvents"].array;
  ASSERT_EQ(events.size(), 2u);
  const JsonValue& kid = events[0];
  const JsonValue& parent = events[1];
  EXPECT_EQ(kid["name"].str, "test.kid");
  EXPECT_EQ(parent["name"].str, "test.parent");
  EXPECT_LE(parent["ts"].number, kid["ts"].number);
  EXPECT_GE(parent["ts"].number + parent["dur"].number,
            kid["ts"].number + kid["dur"].number);
}

TEST_F(TraceTest, BufferCapDropsExcessEventsAndCountsThem) {
  TraceRecorder& recorder = TraceRecorder::Get();
  MetricsRegistry::Get().ResetAll();
  Counter* dropped_metric =
      MetricsRegistry::Get().GetCounter("crowdrl.obs.trace_dropped");
  recorder.SetEventCapForTesting(4);
  for (int i = 0; i < 10; ++i) recorder.RecordComplete("test.flood", 0, 1);
  // The first 4 are stored; the next 6 are counted, not stored.
  EXPECT_EQ(recorder.event_count(), 4u);
  EXPECT_EQ(recorder.dropped_count(), 6u);
  EXPECT_EQ(dropped_metric->value(), 6u);

  // The export declares its own lossiness so a half trace is never
  // mistaken for the whole story.
  std::string path = ::testing::TempDir() + "crowdrl_obs_trace_drop.json";
  ASSERT_TRUE(recorder.WriteChromeTrace(path));
  JsonValue root;
  ASSERT_TRUE(MiniJsonParser::Parse(ReadFile(path), &root));
  EXPECT_EQ(root["traceEvents"].array.size(), 4u);
  ASSERT_TRUE(root.Has("dropped_events"));
  EXPECT_EQ(root["dropped_events"].number, 6.0);
  std::remove(path.c_str());

  // Clear frees the events and re-arms the cap.
  recorder.Clear();
  EXPECT_EQ(recorder.event_count(), 0u);
  EXPECT_EQ(recorder.dropped_count(), 0u);
  recorder.RecordComplete("test.after_clear", 0, 1);
  EXPECT_EQ(recorder.event_count(), 1u);
  recorder.SetEventCapForTesting(0);  // Restore the default cap.
  MetricsRegistry::Get().ResetAll();
}

TEST_F(TraceTest, DropsAreCountedPerThread) {
  TraceRecorder& recorder = TraceRecorder::Get();
  recorder.SetEventCapForTesting(2);
  // Each thread has its own buffer and its own cap; drops sum across
  // threads in dropped_count().
  std::thread t1([&recorder] {
    for (int i = 0; i < 5; ++i) recorder.RecordComplete("test.t1", 0, 1);
  });
  std::thread t2([&recorder] {
    for (int i = 0; i < 7; ++i) recorder.RecordComplete("test.t2", 0, 1);
  });
  t1.join();
  t2.join();
  EXPECT_EQ(recorder.event_count(), 4u);   // 2 kept per thread.
  EXPECT_EQ(recorder.dropped_count(), 8u);  // 3 + 5 dropped.
  recorder.Clear();
  recorder.SetEventCapForTesting(0);
}

}  // namespace
}  // namespace crowdrl::obs
