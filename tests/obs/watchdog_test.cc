// Health-watchdog contract tests, driven deterministically in manual
// mode (tick_micros = 0, every tick is an explicit EvaluateOnce): rule
// kinds fire and clear on the documented conditions, transitions write
// `crowdrl.health.*` gauges and flight-recorder events, inactive scopes
// read healthy, and preconditions suppress spurious verdicts.

#include "obs/watchdog.h"

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace crowdrl::obs {
namespace {

class WatchdogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    MetricsRegistry::Get().ResetAll();
    FlightRecorder::Get().ResetForTesting();
    FlightRecorder::Get().Configure(256);
  }
  void TearDown() override {
    FlightRecorder::Get().ResetForTesting();
    MetricsRegistry::Get().ResetAll();
    SetEnabled(false);
  }

  static WatchdogOptions ManualOptions() {
    WatchdogOptions options;
    options.enabled = true;
    options.tick_micros = 0;  // Manual mode: EvaluateOnce drives ticks.
    return options;
  }

  static WatchdogVerdict FindVerdict(const HealthWatchdog& dog,
                                     const std::string& rule) {
    for (const WatchdogVerdict& v : dog.Verdicts()) {
      if (v.rule == rule) return v;
    }
    ADD_FAILURE() << "no verdict for rule " << rule;
    return {};
  }

  static size_t CountFlightEvents(FlightEventType type) {
    size_t n = 0;
    for (const FlightEventRecord& ev :
         FlightRecorder::Get().OrderedEvents()) {
      if (ev.type == static_cast<uint16_t>(type)) ++n;
    }
    return n;
  }
};

TEST_F(WatchdogTest, GaugeAboveFiresAndClearsWithHealthGauge) {
  Gauge* depth = MetricsRegistry::Get().GetGauge("test.wd.depth");
  WatchdogRule rule;
  rule.name = "deep_queue";
  rule.kind = WatchdogRule::Kind::kGaugeAbove;
  rule.metric = "test.wd.depth";
  rule.threshold = 10.0;
  rule.window_ticks = 2;

  HealthWatchdog dog;
  dog.Start(ManualOptions(),
            {{/*scope_name=*/"camp", /*scope=*/0, {rule}, nullptr}});
  Gauge* health =
      MetricsRegistry::Get().GetGauge("crowdrl.health.camp.deep_queue");

  depth->Set(50.0);
  dog.EvaluateOnce();  // Window not yet full: stays healthy.
  EXPECT_FALSE(FindVerdict(dog, "deep_queue").firing);
  dog.EvaluateOnce();  // Window full, value above threshold: fires.
  EXPECT_TRUE(FindVerdict(dog, "deep_queue").firing);
  EXPECT_EQ(health->value(), 1.0);
  EXPECT_EQ(dog.firings(), 1u);
  EXPECT_EQ(CountFlightEvents(FlightEventType::kWatchdogFiring), 1u);

  depth->Set(1.0);
  dog.EvaluateOnce();  // Back under threshold: clears.
  EXPECT_FALSE(FindVerdict(dog, "deep_queue").firing);
  EXPECT_EQ(health->value(), 0.0);
  EXPECT_EQ(dog.firings(), 1u);  // Firing count is transitions, not ticks.
  EXPECT_EQ(CountFlightEvents(FlightEventType::kWatchdogCleared), 1u);
  dog.Stop();
}

TEST_F(WatchdogTest, CounterStalledDetectsZeroProgress) {
  Counter* commits = MetricsRegistry::Get().GetCounter("test.wd.commits");
  WatchdogRule rule;
  rule.name = "no_commits";
  rule.kind = WatchdogRule::Kind::kCounterStalled;
  rule.metric = "test.wd.commits";
  rule.window_ticks = 3;

  HealthWatchdog dog;
  dog.Start(ManualOptions(), {{"camp", 0, {rule}, nullptr}});

  commits->Inc(5);
  for (int i = 0; i < 3; ++i) dog.EvaluateOnce();
  EXPECT_TRUE(FindVerdict(dog, "no_commits").firing);  // Flat for 3 ticks.

  commits->Inc(1);
  dog.EvaluateOnce();  // Progress within the window: clears.
  EXPECT_FALSE(FindVerdict(dog, "no_commits").firing);
  dog.Stop();
}

TEST_F(WatchdogTest, MonotoneRiseNeedsStrictGrowthEveryTick) {
  Gauge* depth = MetricsRegistry::Get().GetGauge("test.wd.backlog");
  WatchdogRule rule;
  rule.name = "backlog";
  rule.kind = WatchdogRule::Kind::kGaugeMonotoneRise;
  rule.metric = "test.wd.backlog";
  rule.window_ticks = 3;

  HealthWatchdog dog;
  dog.Start(ManualOptions(), {{"camp", 0, {rule}, nullptr}});

  // Monotone growth across the whole window fires.
  for (double v : {1.0, 2.0, 3.0}) {
    depth->Set(v);
    dog.EvaluateOnce();
  }
  EXPECT_TRUE(FindVerdict(dog, "backlog").firing);

  // A single dip anywhere in the window reads as draining: clears.
  depth->Set(2.0);
  dog.EvaluateOnce();
  EXPECT_FALSE(FindVerdict(dog, "backlog").firing);
  dog.Stop();
}

TEST_F(WatchdogTest, CounterRateAboveDetectsBursts) {
  Counter* fallbacks = MetricsRegistry::Get().GetCounter("test.wd.gate");
  WatchdogRule rule;
  rule.name = "gate_burst";
  rule.kind = WatchdogRule::Kind::kCounterRateAbove;
  rule.metric = "test.wd.gate";
  rule.threshold = 4.0;
  rule.window_ticks = 2;

  HealthWatchdog dog;
  dog.Start(ManualOptions(), {{"camp", 0, {rule}, nullptr}});

  dog.EvaluateOnce();
  fallbacks->Inc(2);
  dog.EvaluateOnce();  // Delta 2 <= 4: healthy.
  EXPECT_FALSE(FindVerdict(dog, "gate_burst").firing);
  fallbacks->Inc(10);
  dog.EvaluateOnce();  // Delta 10 > 4: burst.
  EXPECT_TRUE(FindVerdict(dog, "gate_burst").firing);
  dog.Stop();
}

TEST_F(WatchdogTest, PreconditionSuppressesStarvationWithEmptyInbox) {
  MetricsRegistry::Get().GetCounter("test.wd.delivered");
  Gauge* inbox = MetricsRegistry::Get().GetGauge("test.wd.inbox");
  WatchdogRule rule;
  rule.name = "starvation";
  rule.kind = WatchdogRule::Kind::kCounterStalled;
  rule.metric = "test.wd.delivered";
  rule.window_ticks = 2;
  rule.precondition_gauge = "test.wd.inbox";
  rule.precondition_above = 0.0;

  HealthWatchdog dog;
  dog.Start(ManualOptions(), {{"camp", 0, {rule}, nullptr}});

  // Deliveries flat but nothing queued: not starvation, just idle.
  for (int i = 0; i < 3; ++i) dog.EvaluateOnce();
  EXPECT_FALSE(FindVerdict(dog, "starvation").firing);

  // Same flat counter with items actually waiting: fires.
  inbox->Set(7.0);
  dog.EvaluateOnce();
  EXPECT_TRUE(FindVerdict(dog, "starvation").firing);
  dog.Stop();
}

TEST_F(WatchdogTest, InactiveScopeReadsHealthyAndResetsItsWindow) {
  Gauge* depth = MetricsRegistry::Get().GetGauge("test.wd.inactive");
  depth->Set(100.0);
  WatchdogRule rule;
  rule.name = "deep";
  rule.kind = WatchdogRule::Kind::kGaugeAbove;
  rule.metric = "test.wd.inactive";
  rule.threshold = 10.0;
  rule.window_ticks = 2;

  bool active = false;
  WatchdogRuleSet set;
  set.scope_name = "camp";
  set.rules = {rule};
  set.active = [&active] { return active; };

  HealthWatchdog dog;
  dog.Start(ManualOptions(), {set});

  for (int i = 0; i < 4; ++i) dog.EvaluateOnce();
  EXPECT_FALSE(FindVerdict(dog, "deep").firing);  // Finished != stalled.

  active = true;
  dog.EvaluateOnce();  // Window restarted on revival: one tick is not
  EXPECT_FALSE(FindVerdict(dog, "deep").firing);  // enough to fire...
  dog.EvaluateOnce();
  EXPECT_TRUE(FindVerdict(dog, "deep").firing);  // ...two are.
  dog.Stop();
}

TEST_F(WatchdogTest, StartIsNoOpWhenDisabled) {
  HealthWatchdog dog;
  WatchdogOptions off;  // enabled = false.
  dog.Start(off, {{"camp", 0, DefaultCampaignRules("camp"), nullptr}});
  EXPECT_FALSE(dog.running());
  EXPECT_TRUE(dog.Verdicts().empty());
}

TEST_F(WatchdogTest, DefaultCampaignRulesCoverTheDocumentedStallModes) {
  const std::vector<WatchdogRule> rules = DefaultCampaignRules("video");
  std::vector<std::string> names;
  for (const WatchdogRule& r : rules) names.push_back(r.name);
  EXPECT_EQ(names,
            (std::vector<std::string>{"ti_stall", "ingest_backlog",
                                      "no_commits", "inbox_starvation",
                                      "gate_fallback_burst"}));
  // Campaign-scoped rules read the campaign's own metrics.
  for (const WatchdogRule& r : rules) {
    if (r.name == "gate_fallback_burst") continue;  // Process-wide metric.
    EXPECT_EQ(r.metric.rfind("crowdrl.serve.video.", 0), 0u) << r.metric;
  }
}

TEST_F(WatchdogTest, BackgroundThreadStartsAndStopsCleanly) {
  Gauge* depth = MetricsRegistry::Get().GetGauge("test.wd.thread");
  depth->Set(100.0);
  WatchdogRule rule;
  rule.name = "deep";
  rule.kind = WatchdogRule::Kind::kGaugeAbove;
  rule.metric = "test.wd.thread";
  rule.threshold = 10.0;
  rule.window_ticks = 2;

  WatchdogOptions options;
  options.enabled = true;
  options.tick_micros = 500;
  HealthWatchdog dog;
  dog.Start(options, {{"camp", 0, {rule}, nullptr}});
  EXPECT_TRUE(dog.running());
  // The monitor thread fills the window on its own within a few ticks.
  for (int i = 0; i < 2000 && dog.firings() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(dog.firings(), 1u);
  dog.Stop();
  EXPECT_FALSE(dog.running());
  dog.Stop();  // Idempotent.
}

}  // namespace
}  // namespace crowdrl::obs
