// Figure 6: precision as the annotator pool size |W| varies over
// {3, 5, 7} on the three datasets (CP features).
//
// Paper shape: CrowdRL on top at every pool size and nearly flat (it is
// already close to its ceiling); baselines gain more from extra
// annotators; Fashion is the least sensitive dataset.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using crowdrl::bench::BenchConfig;
  using crowdrl::bench::Workload;

  BenchConfig config = crowdrl::bench::ParseArgs(argc, argv);
  crowdrl::bench::PrintBanner("Figure 6: varying |W| (precision)", config);

  const std::vector<int> pool_sizes = {3, 5, 7};
  const std::vector<std::string> datasets = {"S12CP", "S3CP", "Fashion"};
  std::vector<double> pretrained = crowdrl::bench::PretrainCrowdRl(config);

  for (const std::string& name : datasets) {
    Workload base = crowdrl::bench::MakeWorkload(name, config);
    std::vector<std::string> header = {"method"};
    for (int w : pool_sizes) header.push_back("|W|=" + std::to_string(w));
    crowdrl::Table table(header);

    auto frameworks = crowdrl::bench::MakeAllFrameworks(pretrained);
    for (auto& framework : frameworks) {
      std::vector<double> precisions;
      for (int w : pool_sizes) {
        Workload workload;
        workload.dataset = base.dataset;
        workload.pool = crowdrl::bench::MakePoolOfSize(
            w, base.dataset.num_classes, config.base_seed + 7);
        workload.budget = base.budget;
        auto outcome =
            crowdrl::bench::RunCell(framework.get(), workload, config);
        precisions.push_back(outcome.mean.precision);
      }
      table.AddRow(framework->name(), precisions);
    }
    std::printf("-- %s --\n", name.c_str());
    table.Print(std::cout);
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
