// Figure 7: precision as the initial sampling rate alpha varies over
// {0.01, 0.05, 0.1} on the three datasets (CP features).
//
// Paper shape: CrowdRL's margin is largest at small alpha (it can
// bootstrap from few labelled objects); once alpha is big enough all
// human-in-the-loop methods flatten out.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/dalc.h"
#include "baselines/dlta.h"
#include "baselines/hybrid.h"
#include "baselines/idle.h"
#include "baselines/oba.h"
#include "bench/bench_common.h"
#include "core/crowdrl.h"
#include "util/table.h"

namespace {

// Rebuilds the framework list with every alpha-aware framework set to the
// given initial sampling rate (IDLE has no bootstrap phase by design).
std::vector<std::unique_ptr<crowdrl::core::LabellingFramework>>
FrameworksWithAlpha(double alpha, const std::vector<double>& pretrained) {
  namespace baselines = crowdrl::baselines;
  std::vector<std::unique_ptr<crowdrl::core::LabellingFramework>> out;
  baselines::DltaOptions dlta;
  dlta.alpha = alpha;
  out.push_back(std::make_unique<baselines::Dlta>(dlta));
  baselines::ObaOptions oba;
  oba.alpha = alpha;
  out.push_back(std::make_unique<baselines::Oba>(oba));
  out.push_back(std::make_unique<baselines::Idle>());
  baselines::DalcOptions dalc;
  dalc.alpha = alpha;
  out.push_back(std::make_unique<baselines::Dalc>(std::move(dalc)));
  baselines::HybridOptions hybrid;
  hybrid.alpha = alpha;
  out.push_back(std::make_unique<baselines::Hybrid>(std::move(hybrid)));
  crowdrl::core::CrowdRlConfig config;
  config.alpha = alpha;
  config.pretrained_q_params = pretrained;
  out.push_back(
      std::make_unique<crowdrl::core::CrowdRlFramework>(std::move(config)));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using crowdrl::bench::BenchConfig;
  using crowdrl::bench::Workload;

  BenchConfig config = crowdrl::bench::ParseArgs(argc, argv);
  crowdrl::bench::PrintBanner("Figure 7: varying alpha (precision)",
                              config);

  const std::vector<double> alphas = {0.01, 0.05, 0.1};
  const std::vector<std::string> datasets = {"S12CP", "S3CP", "Fashion"};
  std::vector<double> pretrained = crowdrl::bench::PretrainCrowdRl(config);

  for (const std::string& name : datasets) {
    Workload workload = crowdrl::bench::MakeWorkload(name, config);
    std::vector<std::string> header = {"method"};
    for (double a : alphas) {
      header.push_back("a=" + crowdrl::FormatDouble(a, 2));
    }
    crowdrl::Table table(header);

    // One row per framework; frameworks are rebuilt per alpha.
    std::vector<std::vector<double>> rows(6);
    std::vector<std::string> names;
    for (size_t ai = 0; ai < alphas.size(); ++ai) {
      auto frameworks = FrameworksWithAlpha(alphas[ai], pretrained);
      for (size_t fi = 0; fi < frameworks.size(); ++fi) {
        if (ai == 0) names.push_back(frameworks[fi]->name());
        auto outcome = crowdrl::bench::RunCell(frameworks[fi].get(),
                                               workload, config);
        rows[fi].push_back(outcome.mean.precision);
      }
    }
    for (size_t fi = 0; fi < rows.size(); ++fi) {
      table.AddRow(names[fi], rows[fi]);
    }
    std::printf("-- %s --\n", name.c_str());
    table.Print(std::cout);
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
