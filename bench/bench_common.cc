#include "bench/bench_common.h"

#include <sys/resource.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "baselines/dalc.h"
#include "baselines/dlta.h"
#include "baselines/hybrid.h"
#include "baselines/idle.h"
#include "baselines/oba.h"
#include "core/crowdrl.h"
#include "data/workloads.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace crowdrl::bench {

namespace {

constexpr double kSpeechBudget = 10000.0;
constexpr double kFashionBudget = 160000.0;

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--scale=F] [--seeds=N] [--seed=S] [--full] "
               "[--threads=T] [--checkpoint-dir=D] [--checkpoint-every=N] "
               "[--resume] [--obs] [--metrics_out=PATH] [--trace_out=PATH]\n"
               "  --scale=F    fraction of the paper's dataset size/budget "
               "(default 0.25)\n"
               "  --seeds=N    seeds per cell, metrics averaged (default 1)\n"
               "  --seed=S     base seed (default 100)\n"
               "  --full       paper-scale datasets, dims and budgets\n"
               "  --threads=T  largest thread count in thread sweeps "
               "(default 4)\n"
               "  --checkpoint-dir=D    rotating CrowdRL checkpoints in D\n"
               "  --checkpoint-every=N  checkpoint every N iterations\n"
               "  --resume              resume CrowdRL from the newest "
               "checkpoint in D\n"
               "  --obs                 enable runtime metrics hooks\n"
               "  --metrics_out=PATH    per-iteration CrowdRL metrics JSONL "
               "(implies --obs)\n"
               "  --trace_out=PATH      Chrome trace-event JSON of the "
               "CrowdRL run (implies --obs)\n"
               "  --objects=N           override every dataset variant's "
               "object count (0 = paper size x scale)\n",
               argv0);
  std::exit(2);
}

bool IsSpeech(const std::string& name) {
  return name.rfind("S12", 0) == 0 || name.rfind("S3", 0) == 0;
}

data::FeatureView ViewFromSuffix(const std::string& name,
                                 const std::string& base) {
  std::string suffix = name.substr(base.size());
  if (suffix == "C") return data::FeatureView::kContextual;
  if (suffix == "P") return data::FeatureView::kProsodic;
  CROWDRL_CHECK(suffix == "CP") << "unknown view suffix in " << name;
  return data::FeatureView::kConcatenated;
}

}  // namespace

BenchConfig ParseArgs(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      config.scale = std::atof(arg + 8);
      if (config.scale <= 0.0 || config.scale > 1.0) Usage(argv[0]);
    } else if (std::strncmp(arg, "--seeds=", 8) == 0) {
      config.seeds = std::atoi(arg + 8);
      if (config.seeds <= 0) Usage(argv[0]);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      config.base_seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      config.threads = std::atoi(arg + 10);
      if (config.threads <= 0) Usage(argv[0]);
    } else if (std::strncmp(arg, "--checkpoint-dir=", 17) == 0) {
      config.checkpoint_dir = arg + 17;
      if (config.checkpoint_dir.empty()) Usage(argv[0]);
    } else if (std::strncmp(arg, "--checkpoint-every=", 19) == 0) {
      config.checkpoint_every =
          static_cast<size_t>(std::atoll(arg + 19));
    } else if (std::strcmp(arg, "--resume") == 0) {
      config.resume = true;
    } else if (std::strcmp(arg, "--obs") == 0) {
      config.obs = true;
    } else if (std::strncmp(arg, "--metrics_out=", 14) == 0) {
      config.metrics_out = arg + 14;
      if (config.metrics_out.empty()) Usage(argv[0]);
      config.obs = true;
    } else if (std::strncmp(arg, "--trace_out=", 12) == 0) {
      config.trace_out = arg + 12;
      if (config.trace_out.empty()) Usage(argv[0]);
      config.obs = true;
    } else if (std::strncmp(arg, "--objects=", 10) == 0) {
      config.objects_override = static_cast<size_t>(std::atoll(arg + 10));
    } else if (std::strcmp(arg, "--full") == 0) {
      config.full = true;
      config.scale = 1.0;
    } else {
      Usage(argv[0]);
    }
  }
  // Global enable so the hooks cover every bench stage (pretraining,
  // baselines, thread sweeps), not just the CrowdRL framework run.
  if (config.obs) {
    obs::SetEnabled(true);
    if (!config.trace_out.empty()) obs::SetTracing(true);
  }
  return config;
}

data::Dataset MakeDatasetVariant(const std::string& name,
                                 const BenchConfig& config) {
  double scale = config.full ? 1.0 : config.scale;
  if (IsSpeech(name)) {
    std::string base = name.rfind("S12", 0) == 0 ? "S12" : "S3";
    data::SpeechOptions options;
    options.view = ViewFromSuffix(name, base);
    options.full_scale_prosodic = config.full;
    size_t paper_size = base == "S12" ? 2344 : 1898;
    options.num_objects = static_cast<size_t>(std::llround(
        scale * static_cast<double>(paper_size)));
    if (config.objects_override > 0) {
      options.num_objects = config.objects_override;
    }
    return base == "S12" ? data::MakeSpeech12(options)
                         : data::MakeSpeech3(options);
  }
  CROWDRL_CHECK(name == "Fashion") << "unknown dataset variant " << name;
  data::FashionOptions options;
  options.full_scale = config.full;
  if (!config.full) {
    options.num_objects = static_cast<size_t>(
        std::llround(scale * 32398.0 * 0.1));
    // Fashion is 14x larger than the speech sets; an extra 10x reduction
    // keeps the default bench interactive. --full restores 32,398.
    options.num_objects = std::max<size_t>(options.num_objects, 200);
  }
  if (config.objects_override > 0) {
    options.full_scale = false;
    options.num_objects = config.objects_override;
  }
  return data::MakeFashion(options);
}

std::vector<crowd::Annotator> MakePoolFor(const std::string& dataset_name,
                                          int num_classes, uint64_t seed) {
  int total = IsSpeech(dataset_name) ? 5 : 3;
  return MakePoolOfSize(total, num_classes, seed);
}

std::vector<crowd::Annotator> MakePoolOfSize(int total, int num_classes,
                                             uint64_t seed) {
  return crowd::MakePool(crowd::PoolOfSize(total, num_classes, seed));
}

double BudgetFor(const std::string& dataset_name,
                 const BenchConfig& config) {
  double scale = config.full ? 1.0 : config.scale;
  if (IsSpeech(dataset_name)) return kSpeechBudget * scale;
  // Matches the extra 10x Fashion reduction in MakeDatasetVariant.
  return config.full ? kFashionBudget : kFashionBudget * scale * 0.1;
}

Workload MakeWorkload(const std::string& name, const BenchConfig& config) {
  Workload workload;
  workload.dataset = MakeDatasetVariant(name, config);
  workload.pool =
      MakePoolFor(name, workload.dataset.num_classes, config.base_seed + 7);
  workload.budget = BudgetFor(name, config);
  return workload;
}

std::vector<double> PretrainCrowdRl(const BenchConfig& config) {
  // Two held-out synthetic workloads (never evaluated by any figure):
  // one easy, one hard, so the Q-network sees both regimes.
  data::GaussianMixtureOptions easy;
  easy.name = "pretrain-easy";
  easy.num_objects = 400;
  easy.view = {32, 2.0, 0.5};
  easy.seed = config.base_seed + 1001;
  data::GaussianMixtureOptions hard;
  hard.name = "pretrain-hard";
  hard.num_objects = 400;
  hard.view = {32, 1.0, 0.3};
  hard.seed = config.base_seed + 1002;
  data::Dataset easy_set = data::MakeGaussianMixture(easy);
  data::Dataset hard_set = data::MakeGaussianMixture(hard);
  std::vector<crowd::Annotator> pool =
      MakePoolOfSize(5, 2, config.base_seed + 1003);
  std::vector<core::PretrainTask> tasks = {
      {&easy_set, &pool, 1700.0},
      {&hard_set, &pool, 1700.0},
  };
  return core::PretrainQNetwork(core::CrowdRlConfig(), tasks,
                                config.base_seed + 1004);
}

std::vector<std::unique_ptr<core::LabellingFramework>> MakeAllFrameworks(
    const std::vector<double>& pretrained_q, const BenchConfig* config) {
  std::vector<std::unique_ptr<core::LabellingFramework>> frameworks;
  frameworks.push_back(std::make_unique<baselines::Dlta>());
  frameworks.push_back(std::make_unique<baselines::Oba>());
  frameworks.push_back(std::make_unique<baselines::Idle>());
  frameworks.push_back(std::make_unique<baselines::Dalc>());
  frameworks.push_back(std::make_unique<baselines::Hybrid>());
  core::CrowdRlConfig crowdrl_config;
  crowdrl_config.pretrained_q_params = pretrained_q;
  if (config != nullptr) {
    crowdrl_config.checkpoint_dir = config->checkpoint_dir;
    crowdrl_config.checkpoint_every_n_iterations = config->checkpoint_every;
    crowdrl_config.resume = config->resume;
    crowdrl_config.obs.enabled = config->obs;
    crowdrl_config.obs.tracing = !config->trace_out.empty();
    crowdrl_config.obs.metrics_jsonl_path = config->metrics_out;
    crowdrl_config.obs.trace_json_path = config->trace_out;
  }
  frameworks.push_back(
      std::make_unique<core::CrowdRlFramework>(std::move(crowdrl_config)));
  return frameworks;
}

eval::ExperimentOutcome RunCell(core::LabellingFramework* framework,
                                const Workload& workload,
                                const BenchConfig& config) {
  eval::ExperimentSpec spec;
  spec.dataset = &workload.dataset;
  spec.pool = &workload.pool;
  spec.budget = workload.budget;
  spec.num_seeds = config.seeds;
  spec.base_seed = config.base_seed;
  eval::ExperimentOutcome outcome;
  Status status = eval::RunExperiment(framework, spec, &outcome);
  CROWDRL_CHECK(status.ok())
      << framework->name() << " failed: " << status.ToString();
  return outcome;
}

namespace {

// Parses "<Field>:   <kb> kB" out of /proc/self/status; 0 when missing.
size_t ProcStatusKb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  size_t kb = 0;
  char line[256];
  size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 &&
        line[field_len] == ':') {
      kb = static_cast<size_t>(std::atoll(line + field_len + 1));
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

size_t CurrentRssKb() { return ProcStatusKb("VmRSS"); }

size_t PeakRssKb() {
  size_t kb = ProcStatusKb("VmHWM");
  if (kb > 0) return kb;
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    return static_cast<size_t>(usage.ru_maxrss);  // KiB on Linux.
  }
  return 0;
}

void PrintBanner(const std::string& figure, const BenchConfig& config) {
  std::printf("== %s ==\n", figure.c_str());
  std::printf("scale=%.2f seeds=%d base_seed=%llu%s\n", config.scale,
              config.seeds,
              static_cast<unsigned long long>(config.base_seed),
              config.full ? " (paper-scale --full)" : "");
  std::printf("(shapes, not absolute numbers, are the reproduction "
              "target; see EXPERIMENTS.md)\n\n");
}

}  // namespace crowdrl::bench
