// Figure 5: scalability — precision of the six frameworks on {0.1, 0.2,
// 0.3, 0.4, 0.5} samples of the three datasets (CP features), budgets
// fixed at the paper's values.
//
// Paper shape: CrowdRL converges to a high precision as the data scale
// grows; the baselines decay with scale; the speech datasets are more
// sensitive to scale than Fashion.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "data/dataset.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using crowdrl::bench::BenchConfig;
  using crowdrl::bench::Workload;

  BenchConfig config = crowdrl::bench::ParseArgs(argc, argv);
  crowdrl::bench::PrintBanner("Figure 5: scalability (precision)", config);

  const std::vector<double> ratios = {0.1, 0.2, 0.3, 0.4, 0.5};
  const std::vector<std::string> datasets = {"S12CP", "S3CP", "Fashion"};
  std::vector<double> pretrained = crowdrl::bench::PretrainCrowdRl(config);

  for (const std::string& name : datasets) {
    // Sampling applies to the objects; the budget stays at the (scaled)
    // paper value, which is what makes small samples easy and large ones
    // budget-constrained — the effect Fig. 5 shows.
    Workload base = crowdrl::bench::MakeWorkload(name, config);
    std::vector<std::string> header = {"method"};
    for (double r : ratios) header.push_back(crowdrl::FormatDouble(r, 1));
    crowdrl::Table table(header);

    auto frameworks = crowdrl::bench::MakeAllFrameworks(pretrained);
    for (auto& framework : frameworks) {
      std::vector<double> precisions;
      for (double ratio : ratios) {
        crowdrl::Rng rng(config.base_seed + 77);
        Workload sampled;
        sampled.dataset =
            crowdrl::data::Subsample(base.dataset, ratio, &rng);
        sampled.pool = base.pool;
        sampled.budget = base.budget;
        auto outcome =
            crowdrl::bench::RunCell(framework.get(), sampled, config);
        precisions.push_back(outcome.mean.precision);
      }
      table.AddRow(framework->name(), precisions);
    }
    std::printf("-- %s (budget %.0f) --\n", name.c_str(), base.budget);
    table.Print(std::cout);
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
