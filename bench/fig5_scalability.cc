// Figure 5: scalability — precision of the six frameworks on {0.1, 0.2,
// 0.3, 0.4, 0.5} samples of the three datasets (CP features), budgets
// fixed at the paper's values.
//
// Paper shape: CrowdRL converges to a high precision as the data scale
// grows; the baselines decay with scale; the speech datasets are more
// sensitive to scale than Fashion.
//
// Before the precision tables, a wall-clock sweep of the thread-pooled
// candidate-scoring hot path (featurization + batch Q inference) over
// thread counts {1, 2, ..., --threads}, written to BENCH_scaling.json.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "crowd/answer_log.h"
#include "data/dataset.h"
#include "rl/dqn_agent.h"
#include "util/logging.h"
#include "util/table.h"

namespace {

using crowdrl::bench::BenchConfig;
using crowdrl::bench::Workload;

double MinMillis(const std::vector<double>& samples) {
  double best = samples.front();
  for (double s : samples) best = std::min(best, s);
  return best;
}

// Times DqnAgent::Score (candidate featurization + batch Q inference) and
// QNetwork::PredictBatch alone on one workload-sized state, for each
// thread count 1, 2, 4, ... up to `config.threads`. Scores must be
// bit-identical across thread counts (the pool's determinism contract);
// the sweep aborts if they are not. Emits BENCH_scaling.json.
void RunThreadsSweep(const BenchConfig& config) {
  // A wide pool (24 annotators) makes the candidate set |O| x |W| large
  // enough that per-candidate work dominates dispatch overhead.
  constexpr int kPoolSize = 24;
  constexpr int kReps = 5;
  Workload base = crowdrl::bench::MakeWorkload("S12CP", config);
  size_t num_objects = base.dataset.num_objects();
  std::vector<crowdrl::crowd::Annotator> pool = crowdrl::bench::MakePoolOfSize(
      kPoolSize, base.dataset.num_classes, config.base_seed + 7);

  crowdrl::crowd::AnswerLog answers(num_objects, pool.size());
  std::vector<double> costs, qualities;
  std::vector<bool> is_expert;
  for (const auto& annotator : pool) {
    costs.push_back(annotator.cost());
    qualities.push_back(0.5);
    is_expert.push_back(annotator.is_expert());
  }
  std::vector<bool> labelled(num_objects, false);
  crowdrl::rl::StateView view;
  view.answers = &answers;
  view.num_classes = base.dataset.num_classes;
  view.annotator_costs = &costs;
  view.annotator_qualities = &qualities;
  view.annotator_is_expert = &is_expert;
  view.labelled = &labelled;
  view.max_cost = 10.0;
  std::vector<bool> affordable(pool.size(), true);

  std::vector<int> thread_counts;
  for (int t = 1; t < config.threads; t *= 2) thread_counts.push_back(t);
  thread_counts.push_back(config.threads);

  struct SweepRow {
    int threads;
    double score_ms;
    double predict_ms;
  };
  std::vector<SweepRow> rows;
  std::vector<double> reference_scores;
  size_t num_candidates = 0;
  for (int threads : thread_counts) {
    crowdrl::rl::DqnAgentOptions options;
    options.exploration = crowdrl::rl::ExplorationMode::kUcb;
    options.threads = threads;
    options.q.threads = threads;
    options.q.seed = config.base_seed + 3;
    crowdrl::rl::DqnAgent agent(options);
    agent.BeginEpisode(num_objects, pool.size());

    crowdrl::rl::ScoredCandidates warm = agent.Score(view, affordable);
    num_candidates = warm.actions.size();
    if (reference_scores.empty()) {
      reference_scores = warm.scores;
    } else {
      CROWDRL_CHECK(warm.scores == reference_scores)
          << "threads=" << threads
          << " changed candidate scores — determinism contract broken";
    }

    std::vector<double> score_samples, predict_samples;
    for (int rep = 0; rep < kReps; ++rep) {
      auto start = std::chrono::steady_clock::now();
      crowdrl::rl::ScoredCandidates scored = agent.Score(view, affordable);
      auto mid = std::chrono::steady_clock::now();
      std::vector<double> q =
          agent.q_network().PredictBatch(scored.features);
      auto end = std::chrono::steady_clock::now();
      score_samples.push_back(
          std::chrono::duration<double, std::milli>(mid - start).count());
      predict_samples.push_back(
          std::chrono::duration<double, std::milli>(end - mid).count());
      CROWDRL_CHECK(q.size() == scored.actions.size());
    }
    rows.push_back(
        {threads, MinMillis(score_samples), MinMillis(predict_samples)});
  }

  std::printf("-- threads sweep: candidate scoring (S12CP, |W|=%d, %zu "
              "candidates, best of %d) --\n",
              kPoolSize, num_candidates, kReps);
  crowdrl::Table table({"threads", "score_ms", "predict_ms", "speedup"});
  for (const SweepRow& row : rows) {
    table.AddRow(std::to_string(row.threads),
                 {row.score_ms, row.predict_ms,
                  rows.front().score_ms / row.score_ms});
  }
  table.Print(std::cout);

  std::FILE* json = std::fopen("BENCH_scaling.json", "w");
  CROWDRL_CHECK(json != nullptr) << "cannot write BENCH_scaling.json";
  std::fprintf(json, "{\n");
  crowdrl::bench::WriteBenchMeta(json, rows.back().threads);
  std::fprintf(json,
               "  \"bench\": \"fig5_threads_sweep\",\n"
               "  \"stage\": \"candidate_scoring\",\n"
               "  \"dataset\": \"S12CP\",\n"
               "  \"num_objects\": %zu,\n"
               "  \"num_annotators\": %d,\n"
               "  \"candidates\": %zu,\n"
               "  \"reps\": %d,\n"
               "  \"results\": [\n",
               num_objects, kPoolSize, num_candidates, kReps);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(json,
                 "    {\"threads\": %d, \"score_ms\": %.3f, "
                 "\"predict_ms\": %.3f, \"speedup_score\": %.3f, "
                 "\"speedup_predict\": %.3f}%s\n",
                 rows[i].threads, rows[i].score_ms, rows[i].predict_ms,
                 rows.front().score_ms / rows[i].score_ms,
                 rows.front().predict_ms / rows[i].predict_ms,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_scaling.json\n\n");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = crowdrl::bench::ParseArgs(argc, argv);
  crowdrl::bench::PrintBanner("Figure 5: scalability (precision)", config);

  RunThreadsSweep(config);

  const std::vector<double> ratios = {0.1, 0.2, 0.3, 0.4, 0.5};
  const std::vector<std::string> datasets = {"S12CP", "S3CP", "Fashion"};
  std::vector<double> pretrained = crowdrl::bench::PretrainCrowdRl(config);

  for (const std::string& name : datasets) {
    // Sampling applies to the objects; the budget stays at the (scaled)
    // paper value, which is what makes small samples easy and large ones
    // budget-constrained — the effect Fig. 5 shows.
    Workload base = crowdrl::bench::MakeWorkload(name, config);
    std::vector<std::string> header = {"method"};
    for (double r : ratios) header.push_back(crowdrl::FormatDouble(r, 1));
    crowdrl::Table table(header);

    // Passing the config threads the observability flags (and checkpoint
    // flags) into the CrowdRL entry: with --metrics_out/--trace_out each
    // CrowdRL cell rewrites the artifacts, so the files left on disk
    // describe the last cell run.
    auto frameworks = crowdrl::bench::MakeAllFrameworks(pretrained, &config);
    for (auto& framework : frameworks) {
      std::vector<double> precisions;
      for (double ratio : ratios) {
        crowdrl::Rng rng(config.base_seed + 77);
        Workload sampled;
        sampled.dataset =
            crowdrl::data::Subsample(base.dataset, ratio, &rng);
        sampled.pool = base.pool;
        sampled.budget = base.budget;
        auto outcome =
            crowdrl::bench::RunCell(framework.get(), sampled, config);
        precisions.push_back(outcome.mean.precision);
      }
      table.AddRow(framework->name(), precisions);
    }
    std::printf("-- %s (budget %.0f) --\n", name.c_str(), base.budget);
    table.Print(std::cout);
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
