// Human-readable decoder for flight-recorder dumps (DESIGN.md §15).
//
// Usage: flight_decode <dump-file> [--tail=N]
//
// Reads a CRC-framed dump written by io::DumpFlightRecorder (from the
// service failure path, the fatal-signal hook, or `serve_load
// --flight_dump=`), validates its integrity, and prints one line per
// event oldest → newest:
//
//   [   1042] +12.345678s  ti_swap          campaign=video-tags a=7 b=3
//
// Times are printed relative to the first event in the dump so a crash
// narrative reads as elapsed time, not raw epoch nanoseconds. Torn slots
// (a write in flight when the ring was frozen) are marked `TORN` and
// their fields must not be trusted. Exit status is nonzero when the dump
// fails CRC/framing validation, so CI can gate on decodability.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "io/flight_dump.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s <dump-file> [--tail=N]\n", argv0);
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  uint64_t tail = 0;  // 0 = print everything.
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--tail=", 7) == 0) {
      tail = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (path == nullptr) {
    Usage(argv[0]);
    return 2;
  }

  crowdrl::io::FlightDump dump;
  const crowdrl::Status status = crowdrl::io::ReadFlightDump(path, &dump);
  if (!status.ok()) {
    std::fprintf(stderr, "flight_decode: %s: %s\n", path,
                 status.message().c_str());
    return 1;
  }

  std::printf("# %s: %zu events (of %" PRIu64
              " appended, ring capacity %" PRIu64 ")\n",
              path, dump.events.size(), dump.total_appended, dump.capacity);
  if (dump.total_appended > dump.events.size()) {
    std::printf("# %" PRIu64 " older events overwritten by the ring\n",
                dump.total_appended - dump.events.size());
  }

  size_t start = 0;
  if (tail != 0 && dump.events.size() > tail) {
    start = dump.events.size() - static_cast<size_t>(tail);
    std::printf("# (showing last %" PRIu64 ")\n", tail);
  }
  const uint64_t base_ns =
      dump.events.empty() ? 0 : dump.events.front().time_ns;
  size_t torn = 0;
  for (size_t i = start; i < dump.events.size(); ++i) {
    const crowdrl::io::FlightDumpEvent& ev = dump.events[i];
    if (ev.torn) {
      ++torn;
      std::printf("[%7" PRIu64 "] TORN (write in flight; fields untrusted)\n",
                  ev.index);
      continue;
    }
    const uint64_t rel = ev.time_ns >= base_ns ? ev.time_ns - base_ns : 0;
    std::printf("[%7" PRIu64 "] +%4" PRIu64 ".%06" PRIu64
                "s  %-18s %-14s a=%" PRIu64 " b=%" PRIu64 "\n",
                ev.index, static_cast<uint64_t>(rel / 1000000000ull),
                static_cast<uint64_t>((rel / 1000ull) % 1000000ull),
                dump.TypeName(ev.type).c_str(),
                dump.ScopeName(ev.scope).c_str(), ev.a, ev.b);
  }
  if (torn > 0) {
    std::printf("# %zu torn slot(s) — expected at the ring head after a "
                "crash\n",
                torn);
  }
  return 0;
}
