// Component microbenchmarks (google-benchmark): the per-iteration cost of
// every hot path in the labelling loop — truth inference, action scoring,
// enrichment, replay training, classifier fits — plus the GEMM kernel layer.
//
// Besides the google-benchmark suite, this binary emits BENCH_kernels.json:
// a before/after comparison of the blocked GEMM kernels against the seed
// (pre-kernel) implementation at the paper's MLP scale, with bit-identity
// verified. It also emits BENCH_scoring.json: a per-iteration breakdown of
// the candidate-scoring loop (featurize / Q forward / top-k) comparing the
// seed featurizer against the incremental ScoreCache engine, with the
// exact path's bit-identity verified every iteration.
// It also emits BENCH_obs.json: the per-op cost of the observability
// hooks (counter increment, histogram record, trace-span enter/exit) with
// metrics enabled vs disabled, net of an empty-loop baseline that stands
// in for the compiled-out (-DCROWDRL_OBS_BUILD=0) build, where the hooks
// expand to nothing.
// Extra flags (stripped before google-benchmark sees them):
//   --kernels_batch=N     largest batch in the kernel sweep (default 4096)
//   --kernels_json=PATH   kernel report path (default BENCH_kernels.json)
//   --scoring_objects=N   scoring-grid objects (default 2048, x40 annotators)
//   --scoring_json=PATH   scoring report path (default BENCH_scoring.json)
//   --obs_overhead_json=PATH  obs report path (default BENCH_obs.json)

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "classifier/knn_classifier.h"
#include "classifier/mlp_classifier.h"
#include "core/enrichment.h"
#include "inference/dawid_skene.h"
#include "inference/joint_inference.h"
#include "inference/majority_vote.h"
#include "inference/pm.h"
#include "crowd/answer_log.h"
#include "math/gemm.h"
#include "math/vector_ops.h"
#include "nn/mlp.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rl/dqn_agent.h"
#include "rl/q_network.h"
#include "rl/score_cache.h"
#include "tests/testing/reference_gemm.h"
#include "tests/testing/sim_helpers.h"

namespace crowdrl {
namespace {

testing::SimWorld& SharedWorld(size_t objects) {
  static auto* worlds =
      new std::map<size_t, std::unique_ptr<testing::SimWorld>>();
  auto it = worlds->find(objects);
  if (it == worlds->end()) {
    it = worlds
             ->emplace(objects, std::make_unique<testing::SimWorld>(
                                    testing::MakeSimWorld(
                                        objects, 3, 2, 3, 1234)))
             .first;
  }
  return *it->second;
}

inference::InferenceInput MakeInput(testing::SimWorld& world) {
  inference::InferenceInput input;
  input.answers = world.answers.get();
  input.num_classes = 2;
  input.objects = world.objects;
  return input;
}

void BM_MajorityVote(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  inference::MajorityVote mv;
  for (auto _ : state) {
    inference::InferenceResult result;
    benchmark::DoNotOptimize(mv.Infer(MakeInput(world), &result));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MajorityVote)->Arg(256)->Arg(1024);

void BM_DawidSkeneEm(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  inference::DawidSkene em;
  for (auto _ : state) {
    inference::InferenceResult result;
    benchmark::DoNotOptimize(em.Infer(MakeInput(world), &result));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DawidSkeneEm)->Arg(256)->Arg(1024);

void BM_PmInference(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  inference::PmInference pm;
  for (auto _ : state) {
    inference::InferenceResult result;
    benchmark::DoNotOptimize(pm.Infer(MakeInput(world), &result));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PmInference)->Arg(256)->Arg(1024);

void BM_JointInference(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  std::vector<crowd::AnnotatorType> types;
  for (const auto& a : world.pool) types.push_back(a.type());
  inference::JointInferenceOptions options;
  options.em.max_iterations = 8;
  for (auto _ : state) {
    classifier::MlpClassifierOptions cls;
    cls.hidden_sizes = {16};
    cls.epochs = 6;
    classifier::MlpClassifier phi(world.dataset.feature_dim(), 2, cls);
    inference::InferenceInput input = MakeInput(world);
    input.features = &world.dataset.features;
    input.classifier = &phi;
    input.annotator_types = &types;
    inference::JointInference joint(options);
    inference::InferenceResult result;
    benchmark::DoNotOptimize(joint.Infer(input, &result));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JointInference)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_DqnActionScoring(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  rl::DqnAgent agent((rl::DqnAgentOptions()));
  agent.BeginEpisode(world.dataset.num_objects(), world.pool.size());
  std::vector<double> costs, qualities;
  std::vector<bool> is_expert, labelled, affordable;
  for (const auto& a : world.pool) {
    costs.push_back(a.cost());
    qualities.push_back(a.TrueQuality());
    is_expert.push_back(a.is_expert());
    affordable.push_back(true);
  }
  // Half-fresh log so there are valid pairs to score.
  crowd::AnswerLog empty_log(world.dataset.num_objects(),
                             world.pool.size());
  labelled.assign(world.dataset.num_objects(), false);
  rl::StateView view;
  view.answers = &empty_log;
  view.num_classes = 2;
  view.annotator_costs = &costs;
  view.annotator_qualities = &qualities;
  view.annotator_is_expert = &is_expert;
  view.labelled = &labelled;
  view.max_cost = 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.Score(view, affordable));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<int64_t>(world.pool.size()));
}
BENCHMARK(BM_DqnActionScoring)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_EnrichmentPass(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  classifier::MlpClassifierOptions cls;
  cls.hidden_sizes = {16};
  cls.epochs = 6;
  classifier::MlpClassifier phi(world.dataset.feature_dim(), 2, cls);
  Matrix one_hot(world.dataset.num_objects(), 2);
  for (size_t i = 0; i < world.dataset.num_objects(); ++i) {
    one_hot.At(i, static_cast<size_t>(world.dataset.truths[i])) = 1.0;
  }
  CROWDRL_CHECK(phi.Train(world.dataset.features, one_hot, {}).ok());
  core::EnrichmentOptions options;
  options.min_labelled = 0;
  options.min_labelled_fraction = 0.0;
  for (auto _ : state) {
    core::LabelState labels(world.dataset.num_objects(), 2);
    labels.SetLabel(0, 0, core::LabelSource::kInference);
    benchmark::DoNotOptimize(EnrichLabelledSet(phi, world.dataset.features,
                                               options, &labels));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EnrichmentPass)->Arg(256)->Arg(1024);

void BM_QNetworkTrainBatch(benchmark::State& state) {
  rl::QNetwork q((rl::QNetworkOptions()));
  Rng rng(5);
  std::vector<rl::Transition> transitions(32);
  for (auto& t : transitions) {
    t.features.resize(rl::StateFeaturizer::kFeatureDim);
    for (double& f : t.features) f = rng.Uniform();
    t.reward = rng.Uniform();
    t.next_max_q = rng.Uniform();
  }
  std::vector<const rl::Transition*> batch;
  for (const auto& t : transitions) batch.push_back(&t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.TrainBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_QNetworkTrainBatch);

void BM_MlpClassifierTrain(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  Matrix one_hot(world.dataset.num_objects(), 2);
  for (size_t i = 0; i < world.dataset.num_objects(); ++i) {
    one_hot.At(i, static_cast<size_t>(world.dataset.truths[i])) = 1.0;
  }
  classifier::MlpClassifierOptions cls;
  cls.hidden_sizes = {16};
  cls.epochs = 6;
  for (auto _ : state) {
    classifier::MlpClassifier phi(world.dataset.feature_dim(), 2, cls);
    benchmark::DoNotOptimize(
        phi.Train(world.dataset.features, one_hot, {}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MlpClassifierTrain)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_KnnPredict(benchmark::State& state) {
  testing::SimWorld& world = SharedWorld(1024);
  Matrix one_hot(world.dataset.num_objects(), 2);
  for (size_t i = 0; i < world.dataset.num_objects(); ++i) {
    one_hot.At(i, static_cast<size_t>(world.dataset.truths[i])) = 1.0;
  }
  classifier::KnnClassifier knn(world.dataset.feature_dim(), 2);
  CROWDRL_CHECK(knn.Train(world.dataset.features, one_hot, {}).ok());
  std::vector<double> probe = world.dataset.features.RowVector(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.PredictProbs(probe));
  }
}
BENCHMARK(BM_KnnPredict);

// ---- GEMM kernel layer (paper dims: feature 1600, hidden 256, out 64) ----

constexpr size_t kFeatureDim = 1600;
constexpr size_t kHiddenDim = 256;
constexpr size_t kOutDim = 64;

void BM_GemmNT(benchmark::State& state) {
  // Forward layout: activations (batch x in) times weights (out x in)^T.
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(31);
  Matrix a(batch, kFeatureDim);
  Matrix w(kHiddenDim, kFeatureDim);
  a.FillUniform(&rng, -1.0, 1.0);
  w.FillUniform(&rng, -0.1, 0.1);
  Matrix out, scratch;
  for (auto _ : state) {
    gemm::MatMulNTInto(a, w, &out, nullptr, nullptr, &scratch);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch * kFeatureDim *
                                               kHiddenDim));
}
BENCHMARK(BM_GemmNT)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_GemmTN(benchmark::State& state) {
  // Weight-gradient layout: grad (batch x out)^T times input (batch x in).
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(32);
  Matrix g(batch, kHiddenDim);
  Matrix x(batch, kFeatureDim);
  g.FillUniform(&rng, -1.0, 1.0);
  x.FillUniform(&rng, -1.0, 1.0);
  Matrix out;
  for (auto _ : state) {
    gemm::MatMulTNInto(g, x, &out);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch * kFeatureDim *
                                               kHiddenDim));
}
BENCHMARK(BM_GemmTN)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_GemmNN(benchmark::State& state) {
  // Input-gradient layout: grad (batch x out) times weights (out x in).
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(33);
  Matrix g(batch, kHiddenDim);
  Matrix w(kHiddenDim, kFeatureDim);
  g.FillUniform(&rng, -1.0, 1.0);
  w.FillUniform(&rng, -0.1, 0.1);
  Matrix out;
  for (auto _ : state) {
    gemm::MatMulInto(g, w, &out);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch * kFeatureDim *
                                               kHiddenDim));
}
BENCHMARK(BM_GemmNN)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

nn::Mlp MakePaperNet(Rng* rng) {
  return nn::Mlp({kFeatureDim, kHiddenDim, kOutDim},
                 {nn::Activation::kRelu, nn::Activation::kIdentity}, rng);
}

void BM_MlpForward(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(34);
  nn::Mlp net = MakePaperNet(&rng);
  Matrix x(batch, kFeatureDim);
  x.FillUniform(&rng, -1.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(x).data().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_MlpForward)->Arg(256)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_MlpForwardBackward(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(35);
  nn::Mlp net = MakePaperNet(&rng);
  Matrix x(batch, kFeatureDim);
  Matrix grad(batch, kOutDim);
  x.FillUniform(&rng, -1.0, 1.0);
  grad.FillUniform(&rng, -1.0, 1.0);
  for (auto _ : state) {
    net.ZeroGrad();
    net.Forward(x);
    net.Backward(grad);
    benchmark::DoNotOptimize(net.ParamViews().front().grad);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_MlpForwardBackward)->Arg(256)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// ---- BENCH_kernels.json: seed vs kernel, bit-identity verified ----------

using testing::BitEqual;
using testing::ReferenceMatMul;
using testing::ReferenceTransposed;

// The pre-kernel Mlp forward/backward, transcribed from the seed nn/mlp.cc
// and built on the seed matmul (with its data-dependent zero-skip), so the
// "before" timings reflect what the repo actually shipped.
struct SeedNet {
  struct Layer {
    Matrix weight;
    std::vector<double> bias;
    Matrix weight_grad;
    std::vector<double> bias_grad;
    nn::Activation activation;
    Matrix input;
    Matrix output;
  };
  std::vector<Layer> layers;

  SeedNet(const nn::Mlp& net, const std::vector<size_t>& sizes,
          const std::vector<nn::Activation>& acts) {
    std::vector<double> flat = net.FlatParameters();
    size_t offset = 0;
    layers.resize(sizes.size() - 1);
    for (size_t l = 0; l < layers.size(); ++l) {
      Layer& layer = layers[l];
      layer.weight = Matrix(sizes[l + 1], sizes[l]);
      for (double& w : layer.weight.data()) w = flat[offset++];
      layer.bias.assign(flat.begin() + static_cast<ptrdiff_t>(offset),
                        flat.begin() + static_cast<ptrdiff_t>(offset) +
                            static_cast<ptrdiff_t>(sizes[l + 1]));
      offset += sizes[l + 1];
      layer.weight_grad = Matrix(sizes[l + 1], sizes[l]);
      layer.bias_grad.assign(sizes[l + 1], 0.0);
      layer.activation = acts[l];
    }
  }

  void ZeroGrad() {
    for (Layer& layer : layers) {
      layer.weight_grad.Fill(0.0);
      for (double& g : layer.bias_grad) g = 0.0;
    }
  }

  Matrix Forward(const Matrix& batch) {
    Matrix current = batch;
    for (Layer& layer : layers) {
      layer.input = current;
      Matrix pre =
          ReferenceMatMul(current, ReferenceTransposed(layer.weight));
      for (size_t r = 0; r < pre.rows(); ++r) {
        double* row = pre.Row(r);
        for (size_t c = 0; c < pre.cols(); ++c) row[c] += layer.bias[c];
      }
      nn::ApplyActivation(layer.activation, &pre);
      layer.output = pre;
      current = std::move(pre);
    }
    return current;
  }

  Matrix Backward(const Matrix& grad_output) {
    Matrix grad = grad_output;
    for (size_t l = layers.size(); l > 0; --l) {
      Layer& layer = layers[l - 1];
      nn::ApplyActivationGrad(layer.activation, layer.output, &grad);
      Matrix dw = ReferenceMatMul(ReferenceTransposed(grad), layer.input);
      layer.weight_grad.Add(dw);
      for (size_t r = 0; r < grad.rows(); ++r) {
        const double* row = grad.Row(r);
        for (size_t c = 0; c < grad.cols(); ++c) {
          layer.bias_grad[c] += row[c];
        }
      }
      grad = ReferenceMatMul(grad, layer.weight);
    }
    return grad;
  }
};

template <typename Fn>
double MinSeconds(int reps, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  fn();  // Warm caches and scratch allocations.
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto t0 = Clock::now();
    fn();
    best = std::min(best,
                    std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return best;
}

struct OpRow {
  const char* op;
  size_t m, k, n;
  double seed_ms, kernel_ms;
  bool bit_identical;
};

void WriteKernelReport(size_t max_batch, const std::string& path) {
  std::printf("== kernel report (batch up to %zu, %zux%zux%zu net, "
              "simd tier %s) ==\n",
              max_batch, kFeatureDim, kHiddenDim, kOutDim,
              gemm::SimdTierName());
  std::vector<size_t> batches;
  for (size_t b : {size_t{256}, size_t{1024}, max_batch}) {
    if (b <= max_batch &&
        (batches.empty() || b > batches.back())) {
      batches.push_back(b);
    }
  }

  // Per-variant sweep at layer-1 scale, dense operands (raw kernel view).
  std::vector<OpRow> rows;
  Rng rng(41);
  for (size_t b : batches) {
    const int reps = b >= 2048 ? 2 : 3;
    Matrix a(b, kFeatureDim), w(kHiddenDim, kFeatureDim);
    Matrix g(b, kHiddenDim);
    a.FillUniform(&rng, -1.0, 1.0);
    w.FillUniform(&rng, -0.1, 0.1);
    g.FillUniform(&rng, -1.0, 1.0);

    Matrix seed_out, kernel_out, scratch;
    double seed_s = MinSeconds(
        reps, [&] { seed_out = ReferenceMatMul(a, ReferenceTransposed(w)); });
    double kernel_s = MinSeconds(reps, [&] {
      gemm::MatMulNTInto(a, w, &kernel_out, nullptr, nullptr, &scratch);
    });
    rows.push_back({"nt", b, kFeatureDim, kHiddenDim, seed_s * 1e3,
                    kernel_s * 1e3, BitEqual(seed_out, kernel_out)});

    seed_s = MinSeconds(
        reps, [&] { seed_out = ReferenceMatMul(ReferenceTransposed(g), a); });
    kernel_s =
        MinSeconds(reps, [&] { gemm::MatMulTNInto(g, a, &kernel_out); });
    rows.push_back({"tn", kHiddenDim, b, kFeatureDim, seed_s * 1e3,
                    kernel_s * 1e3, BitEqual(seed_out, kernel_out)});

    seed_s = MinSeconds(reps, [&] { seed_out = ReferenceMatMul(g, w); });
    kernel_s =
        MinSeconds(reps, [&] { gemm::MatMulInto(g, w, &kernel_out); });
    rows.push_back({"nn", b, kHiddenDim, kFeatureDim, seed_s * 1e3,
                    kernel_s * 1e3, BitEqual(seed_out, kernel_out)});
  }
  for (const OpRow& r : rows) {
    std::printf("  %s %5zux%4zux%4zu  seed %9.3f ms  kernel %9.3f ms  "
                "%.2fx  biteq=%d\n",
                r.op, r.m, r.k, r.n, r.seed_ms, r.kernel_ms,
                r.seed_ms / r.kernel_ms, r.bit_identical);
  }

  // Full MLP forward+backward at paper scale: the acceptance shape. Real
  // network dataflow, so the seed's zero-skip sees genuine post-ReLU
  // sparsity — this is the honest end-to-end comparison.
  const std::vector<size_t> sizes = {kFeatureDim, kHiddenDim, kOutDim};
  const std::vector<nn::Activation> acts = {nn::Activation::kRelu,
                                            nn::Activation::kIdentity};
  Rng net_rng(42);
  nn::Mlp net(sizes, acts, &net_rng);
  SeedNet seed(net, sizes, acts);
  Matrix x(max_batch, kFeatureDim), grad(max_batch, kOutDim);
  x.FillUniform(&rng, -1.0, 1.0);
  grad.FillUniform(&rng, -1.0, 1.0);
  const int mlp_reps = max_batch >= 2048 ? 2 : 3;
  double seed_s = MinSeconds(mlp_reps, [&] {
    seed.ZeroGrad();
    seed.Forward(x);
    seed.Backward(grad);
  });
  double kernel_s = MinSeconds(mlp_reps, [&] {
    net.ZeroGrad();
    net.Forward(x);
    net.Backward(grad);
  });
  // One more pass of each to compare bits: outputs and every gradient.
  seed.ZeroGrad();
  net.ZeroGrad();
  Matrix seed_fwd = seed.Forward(x);
  seed.Backward(grad);
  Matrix kernel_fwd = net.Forward(x);
  net.Backward(grad);
  bool biteq = BitEqual(seed_fwd, kernel_fwd);
  std::vector<nn::ParamView> views = net.ParamViews();
  for (size_t l = 0; l < seed.layers.size(); ++l) {
    biteq = biteq &&
            std::memcmp(views[2 * l].grad,
                        seed.layers[l].weight_grad.data().data(),
                        seed.layers[l].weight_grad.size() *
                            sizeof(double)) == 0 &&
            std::memcmp(views[2 * l + 1].grad,
                        seed.layers[l].bias_grad.data(),
                        seed.layers[l].bias_grad.size() *
                            sizeof(double)) == 0;
  }
  double speedup = seed_s / kernel_s;
  std::printf("  mlp fwd+bwd %zux%zu: seed %.3f ms  kernel %.3f ms  "
              "%.2fx  biteq=%d\n",
              max_batch, kFeatureDim, seed_s * 1e3, kernel_s * 1e3, speedup,
              biteq);

  std::FILE* json = std::fopen(path.c_str(), "w");
  CROWDRL_CHECK(json != nullptr) << "cannot write " << path;
  std::fprintf(json, "{\n");
  bench::WriteBenchMeta(json, 1);
  std::fprintf(json,
               "  \"bench\": \"kernels\",\n"
               "  \"simd_tier\": \"%s\",\n"
               "  \"dims\": {\"in\": %zu, \"hidden\": %zu, \"out\": %zu},\n"
               "  \"gemm\": [\n",
               gemm::SimdTierName(), kFeatureDim, kHiddenDim, kOutDim);
  for (size_t i = 0; i < rows.size(); ++i) {
    const OpRow& r = rows[i];
    std::fprintf(json,
                 "    {\"op\": \"%s\", \"m\": %zu, \"k\": %zu, \"n\": %zu, "
                 "\"seed_ms\": %.4f, \"kernel_ms\": %.4f, "
                 "\"speedup\": %.3f, \"bit_identical\": %s}%s\n",
                 r.op, r.m, r.k, r.n, r.seed_ms, r.kernel_ms,
                 r.seed_ms / r.kernel_ms, r.bit_identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n"
               "  \"mlp_forward_backward\": {\"batch\": %zu, "
               "\"seed_ms\": %.4f, \"kernel_ms\": %.4f, "
               "\"speedup\": %.3f, \"bit_identical\": %s}\n"
               "}\n",
               max_batch, seed_s * 1e3, kernel_s * 1e3, speedup,
               biteq ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", path.c_str());
}

// ---- BENCH_scoring.json: seed vs incremental scoring engine -------------

// The pre-ScoreCache featurizer, transcribed from the seed rl/state.cc and
// crowd/answer_log.cc (per-call histogram / fraction / probability-row
// allocations and all), so the "seed" timings reflect what the repo
// actually shipped before the incremental engine.
std::vector<int> SeedLabelHistogram(const crowd::AnswerLog& log, int object,
                                    int num_classes) {
  std::vector<int> histogram(static_cast<size_t>(num_classes), 0);
  for (const auto& [annotator, label] : log.AnswersFor(object)) {
    (void)annotator;
    ++histogram[static_cast<size_t>(label)];
  }
  return histogram;
}

void SeedFeaturize(const rl::StateView& view, int object, int annotator,
                   std::vector<double>* out) {
  out->assign(rl::StateFeaturizer::kFeatureDim, 0.0);
  size_t num_annotators = view.answers->num_annotators();
  double log_c = std::log(static_cast<double>(view.num_classes));

  std::vector<int> hist =
      SeedLabelHistogram(*view.answers, object, view.num_classes);
  int answer_count = 0;
  int top_votes = 0;
  for (int v : hist) {
    answer_count += v;
    top_votes = std::max(top_votes, v);
  }
  double answer_entropy = 0.0;
  if (answer_count > 0) {
    std::vector<double> frac(hist.size());
    for (size_t i = 0; i < hist.size(); ++i) {
      frac[i] = static_cast<double>(hist[i]) /
                static_cast<double>(answer_count);
    }
    answer_entropy = Entropy(frac) / log_c;
  }
  double agreement = answer_count > 0
                         ? static_cast<double>(top_votes) /
                               static_cast<double>(answer_count)
                         : 0.0;

  double cls_margin = 0.0;
  double cls_entropy = 1.0;
  if (view.class_probs != nullptr) {
    std::vector<double> probs =
        view.class_probs->RowVector(static_cast<size_t>(object));
    cls_margin = TopTwoGap(probs);
    cls_entropy = Entropy(probs) / log_c;
  }

  size_t j = static_cast<size_t>(annotator);
  double cost = (*view.annotator_costs)[j];
  double max_cost = view.max_cost > 0.0 ? view.max_cost : 1.0;
  double norm_cost = cost / max_cost;
  double quality = (*view.annotator_qualities)[j];
  double quality_per_cost = quality / (norm_cost + 0.1);
  double is_expert =
      view.annotator_is_expert != nullptr && (*view.annotator_is_expert)[j]
          ? 1.0
          : 0.0;

  (*out)[0] = 1.0;
  (*out)[1] = static_cast<double>(answer_count) /
              static_cast<double>(num_annotators);
  (*out)[2] = answer_entropy;
  (*out)[3] = agreement;
  (*out)[4] = cls_margin;
  (*out)[5] = cls_entropy;
  (*out)[6] = quality;
  (*out)[7] = norm_cost;
  (*out)[8] = quality_per_cost / 10.0;
  (*out)[9] = is_expert;
  (*out)[10] = view.budget_fraction_remaining;
  (*out)[11] = view.fraction_labelled;
}

uint64_t OrderedDoubleBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return (bits & (uint64_t{1} << 63)) ? ~bits : bits | (uint64_t{1} << 63);
}

uint64_t UlpDistance(double a, double b) {
  uint64_t ua = OrderedDoubleBits(a);
  uint64_t ub = OrderedDoubleBits(b);
  return ua > ub ? ua - ub : ub - ua;
}

// A paper-scale labelling run in steady state: every Mutate() applies one
// loop iteration's worth of state change — a handful of fresh answers, a
// class-probability refresh for every object (the inference step reruns
// each iteration), re-estimated annotator qualities, and decayed progress
// counters. Both scorers then featurize the same state, so the comparison
// is dirty-sync against full recompute, not first-build against rebuild.
struct ScoringScenario {
  size_t n, m;
  int num_classes;
  crowd::AnswerLog answers;
  std::vector<double> costs, qualities;
  std::vector<bool> is_expert, labelled;
  Matrix class_probs;
  size_t probs_version = 1;
  double budget_fraction = 0.9;
  double fraction_labelled = 0.0;
  std::vector<int> answers_per_object;
  size_t touch_cursor;
  Rng rng{4242};

  ScoringScenario(size_t objects, size_t annotators, int classes)
      : n(objects),
        m(annotators),
        num_classes(classes),
        answers(objects, annotators),
        class_probs(objects, static_cast<size_t>(classes)),
        answers_per_object(objects, 0),
        touch_cursor(objects / 4) {
    for (size_t j = 0; j < m; ++j) {
      is_expert.push_back(j % 8 == 7);
      costs.push_back(is_expert[j] ? 10.0 : 1.0);
      qualities.push_back(0.5 + 0.4 * rng.Uniform());
    }
    labelled.assign(n, false);
    // A quarter of the objects already carry one to three answers.
    for (size_t i = 0; i < n / 4; ++i) {
      int count = 1 + static_cast<int>(i % 3);
      for (int a = 0; a < count; ++a) {
        answers.Record(static_cast<int>(i), a, rng.UniformInt(num_classes));
      }
      answers_per_object[i] = count;
    }
    RefreshProbs();
  }

  void RefreshProbs() {
    for (size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      double* row = class_probs.Row(i);
      for (int c = 0; c < num_classes; ++c) {
        row[c] = 0.05 + rng.Uniform();
        sum += row[c];
      }
      for (int c = 0; c < num_classes; ++c) row[c] /= sum;
    }
    ++probs_version;
  }

  // Steady-state inference step: only the objects that received fresh
  // answers get their beliefs updated, and only a little — the regime of
  // a converging run, and the one the shortlist pruner's drift bounds are
  // built for (a wholesale re-roll is legitimate drift too, it just
  // forces full rescoring every iteration).
  void NudgeProbsFor(const std::vector<size_t>& touched) {
    for (size_t i : touched) {
      double sum = 0.0;
      double* row = class_probs.Row(i);
      for (int c = 0; c < num_classes; ++c) {
        row[c] = std::max(0.01, row[c] + 0.01 * rng.Uniform(-1.0, 1.0));
        sum += row[c];
      }
      for (int c = 0; c < num_classes; ++c) row[c] /= sum;
    }
    ++probs_version;
  }

  void Mutate(bool steady = false) {
    std::vector<size_t> touched;
    for (int picks = 0; picks < 8; ++picks) {
      size_t object = touch_cursor;
      touch_cursor = (touch_cursor + 1) % n;
      int next = answers_per_object[object];
      if (next >= static_cast<int>(m)) continue;
      answers.Record(static_cast<int>(object), next,
                     rng.UniformInt(num_classes));
      ++answers_per_object[object];
      touched.push_back(object);
    }
    if (steady) {
      // Quality re-estimates are periodic and small in steady state.
      if (++steady_ticks % 4 == 0) {
        for (size_t j = 0; j < m; ++j) {
          qualities[j] = std::min(
              0.95, std::max(0.05, qualities[j] + rng.Uniform(-0.002,
                                                              0.002)));
        }
      }
      NudgeProbsFor(touched);
    } else {
      for (size_t j = 0; j < m; ++j) {
        qualities[j] = std::min(0.95, std::max(0.05, qualities[j] +
                                                         rng.Uniform(-0.01,
                                                                     0.01)));
      }
      RefreshProbs();
    }
    budget_fraction *= 0.997;
    fraction_labelled = std::min(0.9, fraction_labelled + 0.002);
  }
  size_t steady_ticks = 0;

  rl::StateView View() const {
    rl::StateView view;
    view.answers = &answers;
    view.num_classes = num_classes;
    view.annotator_costs = &costs;
    view.annotator_qualities = &qualities;
    view.annotator_is_expert = &is_expert;
    view.labelled = &labelled;
    view.class_probs = &class_probs;
    view.class_probs_version = probs_version;
    view.budget_fraction_remaining = budget_fraction;
    view.fraction_labelled = fraction_labelled;
    view.max_cost = 10.0;
    return view;
  }
};

struct StageTimes {
  double featurize_seed = 1e300, featurize_cached = 1e300;
  double forward_seed = 1e300, forward_cached = 1e300;
  double forward_factorized = 1e300;
  double topk_seed = 1e300, topk_cached = 1e300;
};

void WriteScoringReport(size_t objects, const std::string& path) {
  const size_t kAnnotators = 40;
  const int kClasses = 8;
  const int kIterations = 4;
  const int kTopK = 3;
  const int kObjectsToPick = 8;
  using Clock = std::chrono::steady_clock;
  auto secs = [](Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  ScoringScenario sc(objects, kAnnotators, kClasses);
  const size_t pairs = sc.n * sc.m;
  std::printf("== scoring report (%zu objects x %zu annotators, %d classes, "
              "%zu pairs) ==\n",
              sc.n, sc.m, kClasses, pairs);

  // Every (object, annotator) pair is a candidate: nothing is labelled yet,
  // which matches the early-run grids where scoring cost peaks. The UCB
  // exploration bonus is identical in both paths and excluded.
  std::vector<rl::Action> actions(pairs);
  {
    size_t idx = 0;
    for (size_t i = 0; i < sc.n; ++i) {
      for (size_t j = 0; j < sc.m; ++j) {
        actions[idx++] = rl::Action{static_cast<int>(i),
                                    static_cast<int>(j)};
      }
    }
  }

  Matrix seed_features(pairs, rl::StateFeaturizer::kFeatureDim);
  Matrix cached_features(pairs, rl::StateFeaturizer::kFeatureDim);
  rl::ScoreCache cache;
  rl::QNetwork q{rl::QNetworkOptions()};
  cache.Sync(sc.View());  // First build is a full rebuild; untimed.

  StageTimes best;
  bool features_biteq = true;
  bool scores_biteq = true;
  bool topk_biteq = true;
  uint64_t max_ulps = 0;
  double max_abs_diff = 0.0;

  for (int iter = 0; iter < kIterations; ++iter) {
    sc.Mutate();
    const rl::StateView view = sc.View();

    // Stage 1: featurize every candidate pair. Seed path recomputes each
    // row from scratch; cached path dirty-syncs the block store and
    // assembles rows from it.
    auto t0 = Clock::now();
    {
      std::vector<double> row;
      size_t idx = 0;
      for (size_t i = 0; i < sc.n; ++i) {
        for (size_t j = 0; j < sc.m; ++j) {
          SeedFeaturize(view, static_cast<int>(i), static_cast<int>(j),
                        &row);
          std::memcpy(seed_features.Row(idx++), row.data(),
                      row.size() * sizeof(double));
        }
      }
    }
    best.featurize_seed = std::min(best.featurize_seed, secs(t0));

    t0 = Clock::now();
    {
      cache.Sync(view);
      size_t idx = 0;
      for (size_t i = 0; i < sc.n; ++i) {
        for (size_t j = 0; j < sc.m; ++j) {
          cache.AssembleRowInto(static_cast<int>(i), static_cast<int>(j),
                                cached_features.Row(idx++));
        }
      }
    }
    best.featurize_cached = std::min(best.featurize_cached, secs(t0));
    features_biteq =
        features_biteq &&
        std::memcmp(seed_features.data().data(),
                    cached_features.data().data(),
                    seed_features.size() * sizeof(double)) == 0;

    // Stage 2: the Q forward pass. Identical work on the exact path (the
    // cache changes how features are produced, not how they are scored);
    // both sides are timed on their own feature matrix.
    t0 = Clock::now();
    std::vector<double> seed_scores = q.PredictBatch(seed_features);
    best.forward_seed = std::min(best.forward_seed, secs(t0));

    t0 = Clock::now();
    std::vector<double> cached_scores = q.PredictBatch(cached_features);
    best.forward_cached = std::min(best.forward_cached, secs(t0));
    scores_biteq = scores_biteq &&
                   std::memcmp(seed_scores.data(), cached_scores.data(),
                               seed_scores.size() * sizeof(double)) == 0;

    // The gated factorized head: same network, block-decomposed first
    // layer. Not bit-identical by design (accumulation order changes), so
    // it is tracked in ULPs instead.
    rl::FeatureBlocks blocks;
    blocks.object_blocks = &cache.object_blocks();
    blocks.annotator_blocks = &cache.annotator_blocks();
    blocks.global_block = cache.global_block();
    blocks.object_version = cache.object_blocks_version();
    blocks.annotator_version = cache.annotator_blocks_version();
    t0 = Clock::now();
    std::vector<double> fact_scores =
        q.PredictBatchFactorized(blocks, actions, false);
    best.forward_factorized = std::min(best.forward_factorized, secs(t0));
    for (size_t i = 0; i < fact_scores.size(); ++i) {
      max_ulps = std::max(max_ulps,
                          UlpDistance(cached_scores[i], fact_scores[i]));
      max_abs_diff = std::max(max_abs_diff,
                              std::abs(cached_scores[i] - fact_scores[i]));
    }

    // Stage 3: top-k-sum selection over the scored grid.
    rl::ScoredCandidates seed_cand, cached_cand;
    seed_cand.actions = actions;
    seed_cand.scores = std::move(seed_scores);
    cached_cand.actions = actions;
    cached_cand.scores = std::move(cached_scores);
    std::vector<size_t> seed_chosen, cached_chosen;
    t0 = Clock::now();
    std::vector<rl::Assignment> seed_asg = rl::PickTopKSumAssignments(
        seed_cand, kTopK, kObjectsToPick, sc.n, &seed_chosen);
    best.topk_seed = std::min(best.topk_seed, secs(t0));
    t0 = Clock::now();
    std::vector<rl::Assignment> cached_asg = rl::PickTopKSumAssignments(
        cached_cand, kTopK, kObjectsToPick, sc.n, &cached_chosen);
    best.topk_cached = std::min(best.topk_cached, secs(t0));
    topk_biteq = topk_biteq && seed_chosen == cached_chosen &&
                 seed_asg.size() == cached_asg.size();
    for (size_t i = 0; topk_biteq && i < seed_asg.size(); ++i) {
      topk_biteq = seed_asg[i].object == cached_asg[i].object &&
                   seed_asg[i].annotators == cached_asg[i].annotators;
    }
  }

  // ---- Shortlist-pruned end-to-end selection --------------------------
  // Two agents drive the same steady-drift run: the PR 4 production path
  // (incremental cache, exact forward over every pair, no pruning) and
  // the new default (factorized head + shortlist pruning). Timed on
  // SelectBatch end to end; the selected assignments must be identical
  // every iteration — the pruned path's exactness gate falls back to full
  // scoring whenever it cannot prove that.
  const int kPrunedIters = 10;
  const int kPrunedWarmup = 3;  // Pruner warmup (2 full passes) + 1.
  double best_base = 1e300;
  double best_pruned = 1e300;
  bool assignments_identical = true;
  ScoringScenario drift(objects, kAnnotators, kClasses);
  rl::DqnAgentOptions base_options;
  base_options.prune = false;
  base_options.factorized_q_head = false;
  rl::DqnAgentOptions pruned_options;  // Production defaults.
  rl::DqnAgent base_agent(base_options);
  rl::DqnAgent pruned_agent(pruned_options);
  base_agent.BeginEpisode(drift.n, drift.m);
  pruned_agent.BeginEpisode(drift.n, drift.m);
  std::vector<bool> affordable(drift.m, true);
  for (int iter = 0; iter < kPrunedIters; ++iter) {
    drift.Mutate(/*steady=*/true);
    const rl::StateView view = drift.View();
    auto t0 = Clock::now();
    std::vector<rl::Assignment> base_asg =
        base_agent.SelectBatch(view, kTopK, kObjectsToPick, affordable);
    double base_s = secs(t0);
    t0 = Clock::now();
    std::vector<rl::Assignment> pruned_asg =
        pruned_agent.SelectBatch(view, kTopK, kObjectsToPick, affordable);
    double pruned_s = secs(t0);
    if (iter >= kPrunedWarmup) {
      best_base = std::min(best_base, base_s);
      best_pruned = std::min(best_pruned, pruned_s);
    }
    assignments_identical =
        assignments_identical && base_asg.size() == pruned_asg.size();
    for (size_t i = 0;
         assignments_identical && i < base_asg.size(); ++i) {
      assignments_identical =
          base_asg[i].object == pruned_asg[i].object &&
          base_asg[i].annotators == pruned_asg[i].annotators;
    }
    // The world answers the selected assignments; the next iteration's
    // Mutate folds them into the drifting beliefs. Like the stage rows
    // above, the network itself is held fixed — this row isolates the
    // per-iteration scoring cost, not the training schedule.
    for (const rl::Assignment& assignment : base_asg) {
      for (int j : assignment.annotators) {
        if (drift.answers_per_object[assignment.object] >=
            static_cast<int>(drift.m)) {
          break;
        }
        drift.answers.Record(assignment.object, j,
                             drift.rng.UniformInt(kClasses));
        ++drift.answers_per_object[assignment.object];
      }
    }
  }
  const rl::ShortlistPruner::Stats& prune_stats =
      pruned_agent.shortlist_pruner().stats();
  double pruned_speedup = best_base / best_pruned;
  std::printf("  pruned selection: base %.3f ms  pruned %.3f ms  %.2fx  "
              "identical=%d  (pruned_iters=%zu gate_fallbacks=%zu "
              "exact_rows=%zu bounded_rows=%zu)\n",
              best_base * 1e3, best_pruned * 1e3, pruned_speedup,
              assignments_identical, prune_stats.pruned_iterations,
              prune_stats.gate_fallbacks, prune_stats.exact_rows,
              prune_stats.bounded_rows);

  struct StageRow {
    const char* stage;
    double seed_ms, cached_ms;
    bool bit_identical;
  };
  const StageRow rows[] = {
      {"featurize", best.featurize_seed * 1e3, best.featurize_cached * 1e3,
       features_biteq},
      {"q_forward", best.forward_seed * 1e3, best.forward_cached * 1e3,
       scores_biteq},
      {"topk", best.topk_seed * 1e3, best.topk_cached * 1e3, topk_biteq},
  };
  for (const StageRow& r : rows) {
    std::printf("  %-10s seed %8.3f ms  cached %8.3f ms  %5.2fx  biteq=%d\n",
                r.stage, r.seed_ms, r.cached_ms, r.seed_ms / r.cached_ms,
                r.bit_identical);
  }
  // The scoring engine is what this PR replaces: per-iteration candidate
  // featurization. The composite also counts the (unchanged) Q forward and
  // top-k, so it is forward-bound and its speedup is necessarily modest.
  double engine_speedup = best.featurize_seed / best.featurize_cached;
  double iter_seed =
      best.featurize_seed + best.forward_seed + best.topk_seed;
  double iter_cached =
      best.featurize_cached + best.forward_cached + best.topk_cached;
  double iter_fact =
      best.featurize_cached + best.forward_factorized + best.topk_cached;
  bool all_biteq = features_biteq && scores_biteq && topk_biteq;
  std::printf("  scoring engine (featurize): %.2fx  biteq=%d\n",
              engine_speedup, features_biteq);
  std::printf("  per-iteration exact: seed %.3f ms  cached %.3f ms  %.2fx  "
              "biteq=%d\n",
              iter_seed * 1e3, iter_cached * 1e3, iter_seed / iter_cached,
              all_biteq);
  std::printf("  per-iteration factorized: %.3f ms  %.2fx  max_ulps=%llu\n",
              iter_fact * 1e3, iter_seed / iter_fact,
              static_cast<unsigned long long>(max_ulps));

  std::FILE* json = std::fopen(path.c_str(), "w");
  CROWDRL_CHECK(json != nullptr) << "cannot write " << path;
  std::fprintf(json, "{\n");
  bench::WriteBenchMeta(json, 1);
  std::fprintf(json,
               "  \"bench\": \"scoring\",\n"
               "  \"simd_tier\": \"%s\",\n"
               "  \"dims\": {\"objects\": %zu, \"annotators\": %zu, "
               "\"classes\": %d, \"pairs\": %zu, \"feature_dim\": %zu},\n"
               "  \"stages\": [\n",
               gemm::SimdTierName(), sc.n, sc.m, kClasses, pairs,
               static_cast<size_t>(rl::StateFeaturizer::kFeatureDim));
  const size_t num_rows = sizeof(rows) / sizeof(rows[0]);
  for (size_t i = 0; i < num_rows; ++i) {
    const StageRow& r = rows[i];
    std::fprintf(json,
                 "    {\"stage\": \"%s\", \"seed_ms\": %.4f, "
                 "\"cached_ms\": %.4f, \"speedup\": %.3f, "
                 "\"bit_identical\": %s}%s\n",
                 r.stage, r.seed_ms, r.cached_ms, r.seed_ms / r.cached_ms,
                 r.bit_identical ? "true" : "false",
                 i + 1 < num_rows ? "," : "");
  }
  std::fprintf(json,
               "  ],\n"
               "  \"scoring_engine\": {\"seed_ms\": %.4f, "
               "\"cached_ms\": %.4f, \"speedup\": %.3f, "
               "\"bit_identical\": %s},\n",
               best.featurize_seed * 1e3, best.featurize_cached * 1e3,
               engine_speedup, features_biteq ? "true" : "false");
  std::fprintf(json,
               "  \"per_iteration_exact\": {\"seed_ms\": %.4f, "
               "\"cached_ms\": %.4f, \"speedup\": %.3f, "
               "\"bit_identical\": %s},\n",
               iter_seed * 1e3, iter_cached * 1e3, iter_seed / iter_cached,
               all_biteq ? "true" : "false");
  std::fprintf(json,
               "  \"factorized_q_head\": {\"exact_forward_ms\": %.4f, "
               "\"factorized_forward_ms\": %.4f, \"forward_speedup\": %.3f, "
               "\"per_iteration_ms\": %.4f, \"per_iteration_speedup\": "
               "%.3f, \"max_ulps\": %llu, \"max_abs_diff\": %.3e},\n",
               best.forward_cached * 1e3, best.forward_factorized * 1e3,
               best.forward_cached / best.forward_factorized,
               iter_fact * 1e3, iter_seed / iter_fact,
               static_cast<unsigned long long>(max_ulps), max_abs_diff);
  std::fprintf(json,
               "  \"pruned_selection\": {\"baseline_ms\": %.4f, "
               "\"pruned_ms\": %.4f, \"speedup\": %.3f, "
               "\"assignments_identical\": %s, "
               "\"pruned_iterations\": %zu, \"full_iterations\": %zu, "
               "\"gate_fallbacks\": %zu, \"precheck_fallbacks\": %zu, "
               "\"exact_rows\": %zu, \"bounded_rows\": %zu}\n"
               "}\n",
               best_base * 1e3, best_pruned * 1e3, pruned_speedup,
               assignments_identical ? "true" : "false",
               prune_stats.pruned_iterations, prune_stats.full_iterations,
               prune_stats.gate_fallbacks, prune_stats.precheck_fallbacks,
               prune_stats.exact_rows, prune_stats.bounded_rows);
  std::fclose(json);
  std::printf("wrote %s\n", path.c_str());
}

// ---- BENCH_obs.json: observability hook overhead ------------------------

// ns per op, best over `reps` timed passes of `iters` calls each. The
// loop body must not be removable: every measured op either mutates an
// atomic or is pinned with DoNotOptimize.
template <typename Fn>
double NsPerOp(size_t iters, int reps, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  fn(iters / 16 + 1);  // Warm the branch predictors and caches.
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto t0 = Clock::now();
    fn(iters);
    double s = std::chrono::duration<double>(Clock::now() - t0).count();
    best = std::min(best, s * 1e9 / static_cast<double>(iters));
  }
  return best;
}

struct ObsOpRow {
  const char* op;
  double enabled_ns;   // Net of the empty-loop baseline.
  double disabled_ns;  // Net of the empty-loop baseline.
};

// Measures the three hook kinds with metrics (and, for spans, tracing)
// globally enabled and disabled. The "compiled-out" row of the report is
// the empty-loop baseline itself: with -DCROWDRL_OBS_BUILD=0 every hook
// expands to nothing, so its cost *is* the loop floor, and the net figure
// is zero by construction.
void WriteObsReport(const std::string& path) {
  const bool prior_enabled = obs::Enabled();
  const bool prior_tracing = obs::TracingEnabled();

  obs::Counter* counter = obs::MetricsRegistry::Get().GetCounter(
      "crowdrl.bench.obs_overhead_counter");
  obs::Histogram* histogram = obs::MetricsRegistry::Get().GetHistogram(
      "crowdrl.bench.obs_overhead_histogram",
      {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0});

  const int kReps = 5;
  const size_t kFastIters = size_t{1} << 22;
  // An enabled span takes two steady_clock reads plus a buffer append;
  // keep reps under the recorder's per-thread cap and clear between them.
  const size_t kSpanIters = size_t{1} << 18;

  auto baseline_loop = [](size_t n) {
    for (size_t i = 0; i < n; ++i) benchmark::DoNotOptimize(i);
  };
  auto counter_loop = [counter](size_t n) {
    for (size_t i = 0; i < n; ++i) counter->Inc();
    benchmark::DoNotOptimize(counter->value());
  };
  auto histogram_loop = [histogram](size_t n) {
    // Varying values keep the bucket scan honest (1-4 bound compares).
    for (size_t i = 0; i < n; ++i) {
      histogram->Record(static_cast<double>(i & 127));
    }
    benchmark::DoNotOptimize(histogram->sum());
  };
  auto span_loop = [](size_t n) {
    for (size_t i = 0; i < n; ++i) {
      CROWDRL_TRACE_SPAN("bench.obs_overhead");
      benchmark::DoNotOptimize(i);
    }
  };
  auto event_loop = [](size_t n) {
    for (size_t i = 0; i < n; ++i) {
      obs::RecordFlightEvent(obs::FlightEventType::kCheckpoint, 0, i);
    }
    benchmark::DoNotOptimize(obs::FlightRecorder::Get().total_appended());
  };

  const double baseline_ns = NsPerOp(kFastIters, kReps, baseline_loop);
  auto net = [baseline_ns](double raw) {
    return std::max(0.0, raw - baseline_ns);
  };

  obs::SetEnabled(false);
  obs::SetTracing(false);
  CROWDRL_CHECK(!obs::Enabled());
  const double counter_off = NsPerOp(kFastIters, kReps, counter_loop);
  const double histogram_off = NsPerOp(kFastIters, kReps, histogram_loop);
  const double span_off = NsPerOp(kFastIters, kReps, span_loop);
  const double event_off = NsPerOp(kFastIters, kReps, event_loop);

  obs::SetEnabled(true);
  obs::SetTracing(true);
  obs::FlightRecorder::Get().Configure(size_t{1} << 16);
  const double counter_on = NsPerOp(kFastIters, kReps, counter_loop);
  const double histogram_on = NsPerOp(kFastIters, kReps, histogram_loop);
  const double event_on = NsPerOp(kFastIters, kReps, event_loop);
  obs::TraceRecorder::Get().Clear();
  const double span_on = NsPerOp(kSpanIters, kReps, [&](size_t n) {
    obs::TraceRecorder::Get().Clear();  // Stay under the buffer cap.
    span_loop(n);
  });
  obs::TraceRecorder::Get().Clear();

  obs::FlightRecorder::Get().ResetForTesting();
  obs::SetEnabled(prior_enabled);
  obs::SetTracing(prior_tracing);

  const ObsOpRow rows[] = {
      {"counter_inc", net(counter_on), net(counter_off)},
      {"histogram_record", net(histogram_on), net(histogram_off)},
      {"span_enter_exit", net(span_on), net(span_off)},
      {"event_append", net(event_on), net(event_off)},
  };
  // DESIGN.md §10/§15 budget: enabled counter increments stay under
  // 25 ns, enabled flight-recorder appends under 75 ns (a clock read plus
  // a wait-free ring write), and every disabled hook under 1 ns (all net
  // of the loop floor).
  const double kEnabledCounterBudgetNs = 25.0;
  const double kEnabledEventAppendBudgetNs = 75.0;
  const double kDisabledBudgetNs = 1.0;
  bool within_budget = rows[0].enabled_ns <= kEnabledCounterBudgetNs &&
                       rows[3].enabled_ns <= kEnabledEventAppendBudgetNs;
  for (const ObsOpRow& r : rows) {
    within_budget = within_budget && r.disabled_ns <= kDisabledBudgetNs;
  }

  std::printf("== obs overhead report (baseline loop %.3f ns/op) ==\n",
              baseline_ns);
  for (const ObsOpRow& r : rows) {
    std::printf("  %-16s enabled %8.3f ns/op  disabled %8.3f ns/op  "
                "compiled-out 0.000\n",
                r.op, r.enabled_ns, r.disabled_ns);
  }
  std::printf("  within budget (counter<=%.0fns enabled, <=%.0fns "
              "disabled): %s\n",
              kEnabledCounterBudgetNs, kDisabledBudgetNs,
              within_budget ? "yes" : "NO");

  std::FILE* json = std::fopen(path.c_str(), "w");
  CROWDRL_CHECK(json != nullptr) << "cannot write " << path;
  std::fprintf(json, "{\n");
  bench::WriteBenchMeta(json, 1);
  std::fprintf(json,
               "  \"bench\": \"obs_overhead\",\n"
               "  \"baseline_loop_ns\": %.4f,\n"
               "  \"ops\": [\n",
               baseline_ns);
  const size_t num_rows = sizeof(rows) / sizeof(rows[0]);
  for (size_t i = 0; i < num_rows; ++i) {
    const ObsOpRow& r = rows[i];
    std::fprintf(json,
                 "    {\"op\": \"%s\", \"enabled_ns\": %.4f, "
                 "\"disabled_ns\": %.4f, \"compiled_out_ns\": 0.0}%s\n",
                 r.op, r.enabled_ns, r.disabled_ns,
                 i + 1 < num_rows ? "," : "");
  }
  std::fprintf(json,
               "  ],\n"
               "  \"budget\": {\"counter_inc_enabled_max_ns\": %.1f, "
               "\"event_append_enabled_max_ns\": %.1f, "
               "\"disabled_max_ns\": %.1f, \"within_budget\": %s}\n"
               "}\n",
               kEnabledCounterBudgetNs, kEnabledEventAppendBudgetNs,
               kDisabledBudgetNs, within_budget ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace crowdrl

int main(int argc, char** argv) {
  size_t kernels_batch = 4096;
  std::string kernels_json = "BENCH_kernels.json";
  size_t scoring_objects = 2048;
  std::string scoring_json = "BENCH_scoring.json";
  std::string obs_json = "BENCH_obs.json";
  // Strip the report flags before google-benchmark parses argv.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--kernels_batch=", 16) == 0) {
      kernels_batch = static_cast<size_t>(std::atoll(argv[i] + 16));
      CROWDRL_CHECK(kernels_batch > 0);
    } else if (std::strncmp(argv[i], "--kernels_json=", 15) == 0) {
      kernels_json = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--scoring_objects=", 18) == 0) {
      scoring_objects = static_cast<size_t>(std::atoll(argv[i] + 18));
      CROWDRL_CHECK(scoring_objects >= 64);
    } else if (std::strncmp(argv[i], "--scoring_json=", 15) == 0) {
      scoring_json = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--obs_overhead_json=", 20) == 0) {
      obs_json = argv[i] + 20;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  crowdrl::WriteKernelReport(kernels_batch, kernels_json);
  crowdrl::WriteScoringReport(scoring_objects, scoring_json);
  crowdrl::WriteObsReport(obs_json);
  return 0;
}
