// Component microbenchmarks (google-benchmark): the per-iteration cost of
// every hot path in the labelling loop — truth inference, action scoring,
// enrichment, replay training, classifier fits.

#include <benchmark/benchmark.h>

#include "classifier/knn_classifier.h"
#include "classifier/mlp_classifier.h"
#include "core/enrichment.h"
#include "inference/dawid_skene.h"
#include "inference/joint_inference.h"
#include "inference/majority_vote.h"
#include "inference/pm.h"
#include "rl/dqn_agent.h"
#include "tests/testing/sim_helpers.h"

namespace crowdrl {
namespace {

testing::SimWorld& SharedWorld(size_t objects) {
  static auto* worlds =
      new std::map<size_t, std::unique_ptr<testing::SimWorld>>();
  auto it = worlds->find(objects);
  if (it == worlds->end()) {
    it = worlds
             ->emplace(objects, std::make_unique<testing::SimWorld>(
                                    testing::MakeSimWorld(
                                        objects, 3, 2, 3, 1234)))
             .first;
  }
  return *it->second;
}

inference::InferenceInput MakeInput(testing::SimWorld& world) {
  inference::InferenceInput input;
  input.answers = world.answers.get();
  input.num_classes = 2;
  input.objects = world.objects;
  return input;
}

void BM_MajorityVote(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  inference::MajorityVote mv;
  for (auto _ : state) {
    inference::InferenceResult result;
    benchmark::DoNotOptimize(mv.Infer(MakeInput(world), &result));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MajorityVote)->Arg(256)->Arg(1024);

void BM_DawidSkeneEm(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  inference::DawidSkene em;
  for (auto _ : state) {
    inference::InferenceResult result;
    benchmark::DoNotOptimize(em.Infer(MakeInput(world), &result));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DawidSkeneEm)->Arg(256)->Arg(1024);

void BM_PmInference(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  inference::PmInference pm;
  for (auto _ : state) {
    inference::InferenceResult result;
    benchmark::DoNotOptimize(pm.Infer(MakeInput(world), &result));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PmInference)->Arg(256)->Arg(1024);

void BM_JointInference(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  std::vector<crowd::AnnotatorType> types;
  for (const auto& a : world.pool) types.push_back(a.type());
  inference::JointInferenceOptions options;
  options.em.max_iterations = 8;
  for (auto _ : state) {
    classifier::MlpClassifierOptions cls;
    cls.hidden_sizes = {16};
    cls.epochs = 6;
    classifier::MlpClassifier phi(world.dataset.feature_dim(), 2, cls);
    inference::InferenceInput input = MakeInput(world);
    input.features = &world.dataset.features;
    input.classifier = &phi;
    input.annotator_types = &types;
    inference::JointInference joint(options);
    inference::InferenceResult result;
    benchmark::DoNotOptimize(joint.Infer(input, &result));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JointInference)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_DqnActionScoring(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  rl::DqnAgent agent((rl::DqnAgentOptions()));
  agent.BeginEpisode(world.dataset.num_objects(), world.pool.size());
  std::vector<double> costs, qualities;
  std::vector<bool> is_expert, labelled, affordable;
  for (const auto& a : world.pool) {
    costs.push_back(a.cost());
    qualities.push_back(a.TrueQuality());
    is_expert.push_back(a.is_expert());
    affordable.push_back(true);
  }
  // Half-fresh log so there are valid pairs to score.
  crowd::AnswerLog empty_log(world.dataset.num_objects(),
                             world.pool.size());
  labelled.assign(world.dataset.num_objects(), false);
  rl::StateView view;
  view.answers = &empty_log;
  view.num_classes = 2;
  view.annotator_costs = &costs;
  view.annotator_qualities = &qualities;
  view.annotator_is_expert = &is_expert;
  view.labelled = &labelled;
  view.max_cost = 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.Score(view, affordable));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<int64_t>(world.pool.size()));
}
BENCHMARK(BM_DqnActionScoring)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_EnrichmentPass(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  classifier::MlpClassifierOptions cls;
  cls.hidden_sizes = {16};
  cls.epochs = 6;
  classifier::MlpClassifier phi(world.dataset.feature_dim(), 2, cls);
  Matrix one_hot(world.dataset.num_objects(), 2);
  for (size_t i = 0; i < world.dataset.num_objects(); ++i) {
    one_hot.At(i, static_cast<size_t>(world.dataset.truths[i])) = 1.0;
  }
  CROWDRL_CHECK(phi.Train(world.dataset.features, one_hot, {}).ok());
  core::EnrichmentOptions options;
  options.min_labelled = 0;
  options.min_labelled_fraction = 0.0;
  for (auto _ : state) {
    core::LabelState labels(world.dataset.num_objects(), 2);
    labels.SetLabel(0, 0, core::LabelSource::kInference);
    benchmark::DoNotOptimize(EnrichLabelledSet(phi, world.dataset.features,
                                               options, &labels));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EnrichmentPass)->Arg(256)->Arg(1024);

void BM_QNetworkTrainBatch(benchmark::State& state) {
  rl::QNetwork q((rl::QNetworkOptions()));
  Rng rng(5);
  std::vector<rl::Transition> transitions(32);
  for (auto& t : transitions) {
    t.features.resize(rl::StateFeaturizer::kFeatureDim);
    for (double& f : t.features) f = rng.Uniform();
    t.reward = rng.Uniform();
    t.next_max_q = rng.Uniform();
  }
  std::vector<const rl::Transition*> batch;
  for (const auto& t : transitions) batch.push_back(&t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.TrainBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_QNetworkTrainBatch);

void BM_MlpClassifierTrain(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  Matrix one_hot(world.dataset.num_objects(), 2);
  for (size_t i = 0; i < world.dataset.num_objects(); ++i) {
    one_hot.At(i, static_cast<size_t>(world.dataset.truths[i])) = 1.0;
  }
  classifier::MlpClassifierOptions cls;
  cls.hidden_sizes = {16};
  cls.epochs = 6;
  for (auto _ : state) {
    classifier::MlpClassifier phi(world.dataset.feature_dim(), 2, cls);
    benchmark::DoNotOptimize(
        phi.Train(world.dataset.features, one_hot, {}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MlpClassifierTrain)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_KnnPredict(benchmark::State& state) {
  testing::SimWorld& world = SharedWorld(1024);
  Matrix one_hot(world.dataset.num_objects(), 2);
  for (size_t i = 0; i < world.dataset.num_objects(); ++i) {
    one_hot.At(i, static_cast<size_t>(world.dataset.truths[i])) = 1.0;
  }
  classifier::KnnClassifier knn(world.dataset.feature_dim(), 2);
  CROWDRL_CHECK(knn.Train(world.dataset.features, one_hot, {}).ok());
  std::vector<double> probe = world.dataset.features.RowVector(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.PredictProbs(probe));
  }
}
BENCHMARK(BM_KnnPredict);

}  // namespace
}  // namespace crowdrl

BENCHMARK_MAIN();
