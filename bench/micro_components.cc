// Component microbenchmarks (google-benchmark): the per-iteration cost of
// every hot path in the labelling loop — truth inference, action scoring,
// enrichment, replay training, classifier fits — plus the GEMM kernel layer.
//
// Besides the google-benchmark suite, this binary emits BENCH_kernels.json:
// a before/after comparison of the blocked GEMM kernels against the seed
// (pre-kernel) implementation at the paper's MLP scale, with bit-identity
// verified. Extra flags (stripped before google-benchmark sees them):
//   --kernels_batch=N   largest batch in the report sweep (default 4096)
//   --kernels_json=PATH output path (default BENCH_kernels.json)

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "classifier/knn_classifier.h"
#include "classifier/mlp_classifier.h"
#include "core/enrichment.h"
#include "inference/dawid_skene.h"
#include "inference/joint_inference.h"
#include "inference/majority_vote.h"
#include "inference/pm.h"
#include "math/gemm.h"
#include "nn/mlp.h"
#include "rl/dqn_agent.h"
#include "tests/testing/reference_gemm.h"
#include "tests/testing/sim_helpers.h"

namespace crowdrl {
namespace {

testing::SimWorld& SharedWorld(size_t objects) {
  static auto* worlds =
      new std::map<size_t, std::unique_ptr<testing::SimWorld>>();
  auto it = worlds->find(objects);
  if (it == worlds->end()) {
    it = worlds
             ->emplace(objects, std::make_unique<testing::SimWorld>(
                                    testing::MakeSimWorld(
                                        objects, 3, 2, 3, 1234)))
             .first;
  }
  return *it->second;
}

inference::InferenceInput MakeInput(testing::SimWorld& world) {
  inference::InferenceInput input;
  input.answers = world.answers.get();
  input.num_classes = 2;
  input.objects = world.objects;
  return input;
}

void BM_MajorityVote(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  inference::MajorityVote mv;
  for (auto _ : state) {
    inference::InferenceResult result;
    benchmark::DoNotOptimize(mv.Infer(MakeInput(world), &result));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MajorityVote)->Arg(256)->Arg(1024);

void BM_DawidSkeneEm(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  inference::DawidSkene em;
  for (auto _ : state) {
    inference::InferenceResult result;
    benchmark::DoNotOptimize(em.Infer(MakeInput(world), &result));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DawidSkeneEm)->Arg(256)->Arg(1024);

void BM_PmInference(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  inference::PmInference pm;
  for (auto _ : state) {
    inference::InferenceResult result;
    benchmark::DoNotOptimize(pm.Infer(MakeInput(world), &result));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PmInference)->Arg(256)->Arg(1024);

void BM_JointInference(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  std::vector<crowd::AnnotatorType> types;
  for (const auto& a : world.pool) types.push_back(a.type());
  inference::JointInferenceOptions options;
  options.em.max_iterations = 8;
  for (auto _ : state) {
    classifier::MlpClassifierOptions cls;
    cls.hidden_sizes = {16};
    cls.epochs = 6;
    classifier::MlpClassifier phi(world.dataset.feature_dim(), 2, cls);
    inference::InferenceInput input = MakeInput(world);
    input.features = &world.dataset.features;
    input.classifier = &phi;
    input.annotator_types = &types;
    inference::JointInference joint(options);
    inference::InferenceResult result;
    benchmark::DoNotOptimize(joint.Infer(input, &result));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JointInference)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_DqnActionScoring(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  rl::DqnAgent agent((rl::DqnAgentOptions()));
  agent.BeginEpisode(world.dataset.num_objects(), world.pool.size());
  std::vector<double> costs, qualities;
  std::vector<bool> is_expert, labelled, affordable;
  for (const auto& a : world.pool) {
    costs.push_back(a.cost());
    qualities.push_back(a.TrueQuality());
    is_expert.push_back(a.is_expert());
    affordable.push_back(true);
  }
  // Half-fresh log so there are valid pairs to score.
  crowd::AnswerLog empty_log(world.dataset.num_objects(),
                             world.pool.size());
  labelled.assign(world.dataset.num_objects(), false);
  rl::StateView view;
  view.answers = &empty_log;
  view.num_classes = 2;
  view.annotator_costs = &costs;
  view.annotator_qualities = &qualities;
  view.annotator_is_expert = &is_expert;
  view.labelled = &labelled;
  view.max_cost = 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.Score(view, affordable));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<int64_t>(world.pool.size()));
}
BENCHMARK(BM_DqnActionScoring)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_EnrichmentPass(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  classifier::MlpClassifierOptions cls;
  cls.hidden_sizes = {16};
  cls.epochs = 6;
  classifier::MlpClassifier phi(world.dataset.feature_dim(), 2, cls);
  Matrix one_hot(world.dataset.num_objects(), 2);
  for (size_t i = 0; i < world.dataset.num_objects(); ++i) {
    one_hot.At(i, static_cast<size_t>(world.dataset.truths[i])) = 1.0;
  }
  CROWDRL_CHECK(phi.Train(world.dataset.features, one_hot, {}).ok());
  core::EnrichmentOptions options;
  options.min_labelled = 0;
  options.min_labelled_fraction = 0.0;
  for (auto _ : state) {
    core::LabelState labels(world.dataset.num_objects(), 2);
    labels.SetLabel(0, 0, core::LabelSource::kInference);
    benchmark::DoNotOptimize(EnrichLabelledSet(phi, world.dataset.features,
                                               options, &labels));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EnrichmentPass)->Arg(256)->Arg(1024);

void BM_QNetworkTrainBatch(benchmark::State& state) {
  rl::QNetwork q((rl::QNetworkOptions()));
  Rng rng(5);
  std::vector<rl::Transition> transitions(32);
  for (auto& t : transitions) {
    t.features.resize(rl::StateFeaturizer::kFeatureDim);
    for (double& f : t.features) f = rng.Uniform();
    t.reward = rng.Uniform();
    t.next_max_q = rng.Uniform();
  }
  std::vector<const rl::Transition*> batch;
  for (const auto& t : transitions) batch.push_back(&t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.TrainBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_QNetworkTrainBatch);

void BM_MlpClassifierTrain(benchmark::State& state) {
  testing::SimWorld& world =
      SharedWorld(static_cast<size_t>(state.range(0)));
  Matrix one_hot(world.dataset.num_objects(), 2);
  for (size_t i = 0; i < world.dataset.num_objects(); ++i) {
    one_hot.At(i, static_cast<size_t>(world.dataset.truths[i])) = 1.0;
  }
  classifier::MlpClassifierOptions cls;
  cls.hidden_sizes = {16};
  cls.epochs = 6;
  for (auto _ : state) {
    classifier::MlpClassifier phi(world.dataset.feature_dim(), 2, cls);
    benchmark::DoNotOptimize(
        phi.Train(world.dataset.features, one_hot, {}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MlpClassifierTrain)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_KnnPredict(benchmark::State& state) {
  testing::SimWorld& world = SharedWorld(1024);
  Matrix one_hot(world.dataset.num_objects(), 2);
  for (size_t i = 0; i < world.dataset.num_objects(); ++i) {
    one_hot.At(i, static_cast<size_t>(world.dataset.truths[i])) = 1.0;
  }
  classifier::KnnClassifier knn(world.dataset.feature_dim(), 2);
  CROWDRL_CHECK(knn.Train(world.dataset.features, one_hot, {}).ok());
  std::vector<double> probe = world.dataset.features.RowVector(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.PredictProbs(probe));
  }
}
BENCHMARK(BM_KnnPredict);

// ---- GEMM kernel layer (paper dims: feature 1600, hidden 256, out 64) ----

constexpr size_t kFeatureDim = 1600;
constexpr size_t kHiddenDim = 256;
constexpr size_t kOutDim = 64;

void BM_GemmNT(benchmark::State& state) {
  // Forward layout: activations (batch x in) times weights (out x in)^T.
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(31);
  Matrix a(batch, kFeatureDim);
  Matrix w(kHiddenDim, kFeatureDim);
  a.FillUniform(&rng, -1.0, 1.0);
  w.FillUniform(&rng, -0.1, 0.1);
  Matrix out, scratch;
  for (auto _ : state) {
    gemm::MatMulNTInto(a, w, &out, nullptr, nullptr, &scratch);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch * kFeatureDim *
                                               kHiddenDim));
}
BENCHMARK(BM_GemmNT)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_GemmTN(benchmark::State& state) {
  // Weight-gradient layout: grad (batch x out)^T times input (batch x in).
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(32);
  Matrix g(batch, kHiddenDim);
  Matrix x(batch, kFeatureDim);
  g.FillUniform(&rng, -1.0, 1.0);
  x.FillUniform(&rng, -1.0, 1.0);
  Matrix out;
  for (auto _ : state) {
    gemm::MatMulTNInto(g, x, &out);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch * kFeatureDim *
                                               kHiddenDim));
}
BENCHMARK(BM_GemmTN)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_GemmNN(benchmark::State& state) {
  // Input-gradient layout: grad (batch x out) times weights (out x in).
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(33);
  Matrix g(batch, kHiddenDim);
  Matrix w(kHiddenDim, kFeatureDim);
  g.FillUniform(&rng, -1.0, 1.0);
  w.FillUniform(&rng, -0.1, 0.1);
  Matrix out;
  for (auto _ : state) {
    gemm::MatMulInto(g, w, &out);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch * kFeatureDim *
                                               kHiddenDim));
}
BENCHMARK(BM_GemmNN)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

nn::Mlp MakePaperNet(Rng* rng) {
  return nn::Mlp({kFeatureDim, kHiddenDim, kOutDim},
                 {nn::Activation::kRelu, nn::Activation::kIdentity}, rng);
}

void BM_MlpForward(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(34);
  nn::Mlp net = MakePaperNet(&rng);
  Matrix x(batch, kFeatureDim);
  x.FillUniform(&rng, -1.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(x).data().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_MlpForward)->Arg(256)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_MlpForwardBackward(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(35);
  nn::Mlp net = MakePaperNet(&rng);
  Matrix x(batch, kFeatureDim);
  Matrix grad(batch, kOutDim);
  x.FillUniform(&rng, -1.0, 1.0);
  grad.FillUniform(&rng, -1.0, 1.0);
  for (auto _ : state) {
    net.ZeroGrad();
    net.Forward(x);
    net.Backward(grad);
    benchmark::DoNotOptimize(net.ParamViews().front().grad);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_MlpForwardBackward)->Arg(256)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// ---- BENCH_kernels.json: seed vs kernel, bit-identity verified ----------

using testing::BitEqual;
using testing::ReferenceMatMul;
using testing::ReferenceTransposed;

// The pre-kernel Mlp forward/backward, transcribed from the seed nn/mlp.cc
// and built on the seed matmul (with its data-dependent zero-skip), so the
// "before" timings reflect what the repo actually shipped.
struct SeedNet {
  struct Layer {
    Matrix weight;
    std::vector<double> bias;
    Matrix weight_grad;
    std::vector<double> bias_grad;
    nn::Activation activation;
    Matrix input;
    Matrix output;
  };
  std::vector<Layer> layers;

  SeedNet(const nn::Mlp& net, const std::vector<size_t>& sizes,
          const std::vector<nn::Activation>& acts) {
    std::vector<double> flat = net.FlatParameters();
    size_t offset = 0;
    layers.resize(sizes.size() - 1);
    for (size_t l = 0; l < layers.size(); ++l) {
      Layer& layer = layers[l];
      layer.weight = Matrix(sizes[l + 1], sizes[l]);
      for (double& w : layer.weight.data()) w = flat[offset++];
      layer.bias.assign(flat.begin() + static_cast<ptrdiff_t>(offset),
                        flat.begin() + static_cast<ptrdiff_t>(offset) +
                            static_cast<ptrdiff_t>(sizes[l + 1]));
      offset += sizes[l + 1];
      layer.weight_grad = Matrix(sizes[l + 1], sizes[l]);
      layer.bias_grad.assign(sizes[l + 1], 0.0);
      layer.activation = acts[l];
    }
  }

  void ZeroGrad() {
    for (Layer& layer : layers) {
      layer.weight_grad.Fill(0.0);
      for (double& g : layer.bias_grad) g = 0.0;
    }
  }

  Matrix Forward(const Matrix& batch) {
    Matrix current = batch;
    for (Layer& layer : layers) {
      layer.input = current;
      Matrix pre =
          ReferenceMatMul(current, ReferenceTransposed(layer.weight));
      for (size_t r = 0; r < pre.rows(); ++r) {
        double* row = pre.Row(r);
        for (size_t c = 0; c < pre.cols(); ++c) row[c] += layer.bias[c];
      }
      nn::ApplyActivation(layer.activation, &pre);
      layer.output = pre;
      current = std::move(pre);
    }
    return current;
  }

  Matrix Backward(const Matrix& grad_output) {
    Matrix grad = grad_output;
    for (size_t l = layers.size(); l > 0; --l) {
      Layer& layer = layers[l - 1];
      nn::ApplyActivationGrad(layer.activation, layer.output, &grad);
      Matrix dw = ReferenceMatMul(ReferenceTransposed(grad), layer.input);
      layer.weight_grad.Add(dw);
      for (size_t r = 0; r < grad.rows(); ++r) {
        const double* row = grad.Row(r);
        for (size_t c = 0; c < grad.cols(); ++c) {
          layer.bias_grad[c] += row[c];
        }
      }
      grad = ReferenceMatMul(grad, layer.weight);
    }
    return grad;
  }
};

template <typename Fn>
double MinSeconds(int reps, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  fn();  // Warm caches and scratch allocations.
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto t0 = Clock::now();
    fn();
    best = std::min(best,
                    std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return best;
}

struct OpRow {
  const char* op;
  size_t m, k, n;
  double seed_ms, kernel_ms;
  bool bit_identical;
};

void WriteKernelReport(size_t max_batch, const std::string& path) {
  std::printf("== kernel report (batch up to %zu, %zux%zux%zu net, "
              "simd tier %s) ==\n",
              max_batch, kFeatureDim, kHiddenDim, kOutDim,
              gemm::SimdTierName());
  std::vector<size_t> batches;
  for (size_t b : {size_t{256}, size_t{1024}, max_batch}) {
    if (b <= max_batch &&
        (batches.empty() || b > batches.back())) {
      batches.push_back(b);
    }
  }

  // Per-variant sweep at layer-1 scale, dense operands (raw kernel view).
  std::vector<OpRow> rows;
  Rng rng(41);
  for (size_t b : batches) {
    const int reps = b >= 2048 ? 2 : 3;
    Matrix a(b, kFeatureDim), w(kHiddenDim, kFeatureDim);
    Matrix g(b, kHiddenDim);
    a.FillUniform(&rng, -1.0, 1.0);
    w.FillUniform(&rng, -0.1, 0.1);
    g.FillUniform(&rng, -1.0, 1.0);

    Matrix seed_out, kernel_out, scratch;
    double seed_s = MinSeconds(
        reps, [&] { seed_out = ReferenceMatMul(a, ReferenceTransposed(w)); });
    double kernel_s = MinSeconds(reps, [&] {
      gemm::MatMulNTInto(a, w, &kernel_out, nullptr, nullptr, &scratch);
    });
    rows.push_back({"nt", b, kFeatureDim, kHiddenDim, seed_s * 1e3,
                    kernel_s * 1e3, BitEqual(seed_out, kernel_out)});

    seed_s = MinSeconds(
        reps, [&] { seed_out = ReferenceMatMul(ReferenceTransposed(g), a); });
    kernel_s =
        MinSeconds(reps, [&] { gemm::MatMulTNInto(g, a, &kernel_out); });
    rows.push_back({"tn", kHiddenDim, b, kFeatureDim, seed_s * 1e3,
                    kernel_s * 1e3, BitEqual(seed_out, kernel_out)});

    seed_s = MinSeconds(reps, [&] { seed_out = ReferenceMatMul(g, w); });
    kernel_s =
        MinSeconds(reps, [&] { gemm::MatMulInto(g, w, &kernel_out); });
    rows.push_back({"nn", b, kHiddenDim, kFeatureDim, seed_s * 1e3,
                    kernel_s * 1e3, BitEqual(seed_out, kernel_out)});
  }
  for (const OpRow& r : rows) {
    std::printf("  %s %5zux%4zux%4zu  seed %9.3f ms  kernel %9.3f ms  "
                "%.2fx  biteq=%d\n",
                r.op, r.m, r.k, r.n, r.seed_ms, r.kernel_ms,
                r.seed_ms / r.kernel_ms, r.bit_identical);
  }

  // Full MLP forward+backward at paper scale: the acceptance shape. Real
  // network dataflow, so the seed's zero-skip sees genuine post-ReLU
  // sparsity — this is the honest end-to-end comparison.
  const std::vector<size_t> sizes = {kFeatureDim, kHiddenDim, kOutDim};
  const std::vector<nn::Activation> acts = {nn::Activation::kRelu,
                                            nn::Activation::kIdentity};
  Rng net_rng(42);
  nn::Mlp net(sizes, acts, &net_rng);
  SeedNet seed(net, sizes, acts);
  Matrix x(max_batch, kFeatureDim), grad(max_batch, kOutDim);
  x.FillUniform(&rng, -1.0, 1.0);
  grad.FillUniform(&rng, -1.0, 1.0);
  const int mlp_reps = max_batch >= 2048 ? 2 : 3;
  double seed_s = MinSeconds(mlp_reps, [&] {
    seed.ZeroGrad();
    seed.Forward(x);
    seed.Backward(grad);
  });
  double kernel_s = MinSeconds(mlp_reps, [&] {
    net.ZeroGrad();
    net.Forward(x);
    net.Backward(grad);
  });
  // One more pass of each to compare bits: outputs and every gradient.
  seed.ZeroGrad();
  net.ZeroGrad();
  Matrix seed_fwd = seed.Forward(x);
  seed.Backward(grad);
  Matrix kernel_fwd = net.Forward(x);
  net.Backward(grad);
  bool biteq = BitEqual(seed_fwd, kernel_fwd);
  std::vector<nn::ParamView> views = net.ParamViews();
  for (size_t l = 0; l < seed.layers.size(); ++l) {
    biteq = biteq &&
            std::memcmp(views[2 * l].grad,
                        seed.layers[l].weight_grad.data().data(),
                        seed.layers[l].weight_grad.size() *
                            sizeof(double)) == 0 &&
            std::memcmp(views[2 * l + 1].grad,
                        seed.layers[l].bias_grad.data(),
                        seed.layers[l].bias_grad.size() *
                            sizeof(double)) == 0;
  }
  double speedup = seed_s / kernel_s;
  std::printf("  mlp fwd+bwd %zux%zu: seed %.3f ms  kernel %.3f ms  "
              "%.2fx  biteq=%d\n",
              max_batch, kFeatureDim, seed_s * 1e3, kernel_s * 1e3, speedup,
              biteq);

  std::FILE* json = std::fopen(path.c_str(), "w");
  CROWDRL_CHECK(json != nullptr) << "cannot write " << path;
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"kernels\",\n"
               "  \"simd_tier\": \"%s\",\n"
               "  \"dims\": {\"in\": %zu, \"hidden\": %zu, \"out\": %zu},\n"
               "  \"gemm\": [\n",
               gemm::SimdTierName(), kFeatureDim, kHiddenDim, kOutDim);
  for (size_t i = 0; i < rows.size(); ++i) {
    const OpRow& r = rows[i];
    std::fprintf(json,
                 "    {\"op\": \"%s\", \"m\": %zu, \"k\": %zu, \"n\": %zu, "
                 "\"seed_ms\": %.4f, \"kernel_ms\": %.4f, "
                 "\"speedup\": %.3f, \"bit_identical\": %s}%s\n",
                 r.op, r.m, r.k, r.n, r.seed_ms, r.kernel_ms,
                 r.seed_ms / r.kernel_ms, r.bit_identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n"
               "  \"mlp_forward_backward\": {\"batch\": %zu, "
               "\"seed_ms\": %.4f, \"kernel_ms\": %.4f, "
               "\"speedup\": %.3f, \"bit_identical\": %s}\n"
               "}\n",
               max_batch, seed_s * 1e3, kernel_s * 1e3, speedup,
               biteq ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace crowdrl

int main(int argc, char** argv) {
  size_t kernels_batch = 4096;
  std::string kernels_json = "BENCH_kernels.json";
  // Strip the kernel-report flags before google-benchmark parses argv.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--kernels_batch=", 16) == 0) {
      kernels_batch = static_cast<size_t>(std::atoll(argv[i] + 16));
      CROWDRL_CHECK(kernels_batch > 0);
    } else if (std::strncmp(argv[i], "--kernels_json=", 15) == 0) {
      kernels_json = argv[i] + 15;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  crowdrl::WriteKernelReport(kernels_batch, kernels_json);
  return 0;
}
