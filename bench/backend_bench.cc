// Compute-backend bench: reference vs quantized-int8 serving inference.
// Emits BENCH_backend.json with
//   * forward throughput (rows/sec) of the QNetwork-shaped MLP under the
//     reference CpuBackend and the QuantizedCpuBackend, per SIMD tier,
//   * weight memory: fp64 weights vs the int8-plus-scales pack,
//   * reference bit-identity vs an in-bench naive forward (the same
//     triple-loop the golden tests pin),
//   * quantized accuracy: end-to-end max-abs-error plus a guard-every-call
//     audit run — "within_documented_bound" is true iff the backend's own
//     ElementErrorBound guard never tripped (fallbacks == 0),
//   * selection agreement: top-k overlap and argmax identity between the
//     two backends' Q scores over the bench batch,
//   * end-to-end serve delta: a small single-campaign LabellingService run
//     per backend, answers/sec each.
//
// Flags:
//   --batch=N    forward batch rows                (default 8192)
//   --reps=N     timed repetitions per backend     (default 30)
//   --serve_scale=F  dataset scale of the serve leg (default 0.05;
//                    0 disables the serve comparison)
//   --json=PATH  output report (default BENCH_backend.json)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "math/backend.h"
#include "nn/activation.h"
#include "nn/mlp.h"
#include "rl/state.h"
#include "serve/service.h"
#include "util/logging.h"
#include "util/random.h"

namespace {

using crowdrl::Matrix;
using crowdrl::Rng;

struct BackendBenchConfig {
  size_t batch = 8192;
  int reps = 30;
  double serve_scale = 0.05;
  std::string json = "BENCH_backend.json";
};

BackendBenchConfig ParseBackendArgs(int argc, char** argv) {
  BackendBenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--batch=")) {
      config.batch = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--reps=")) {
      config.reps = std::atoi(v);
    } else if (const char* v = value("--serve_scale=")) {
      config.serve_scale = std::atof(v);
    } else if (const char* v = value("--json=")) {
      config.json = v;
    } else {
      std::fprintf(stderr,
                   "usage: backend_bench [--batch=N] [--reps=N] "
                   "[--serve_scale=F] [--json=PATH]\n");
      std::exit(2);
    }
  }
  CROWDRL_CHECK(config.batch > 0 && config.reps > 0);
  return config;
}

double Seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The historical naive forward (one scalar accumulator per element, k
// ascending) — the arithmetic the gemm kernels and the reference backend
// promise to reproduce bit-exactly.
Matrix NaiveForward(const crowdrl::nn::Mlp& net, const Matrix& batch) {
  Matrix current = batch;
  for (size_t l = 0; l < net.num_layers(); ++l) {
    const Matrix& w = net.layer_weight(l);
    const std::vector<double>& bias = net.layer_bias(l);
    Matrix out(current.rows(), w.rows());
    for (size_t r = 0; r < current.rows(); ++r) {
      for (size_t j = 0; j < w.rows(); ++j) {
        double acc = 0.0;
        for (size_t t = 0; t < w.cols(); ++t) {
          acc += current.At(r, t) * w.At(j, t);
        }
        out.At(r, j) = acc + bias[j];
      }
    }
    crowdrl::nn::ApplyActivation(net.layer_activation(l), &out);
    current = std::move(out);
  }
  return current;
}

bool BitEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(double)) == 0;
}

// Median-of-reps forward time for one backend, seconds per InferInto.
double TimeForward(const crowdrl::nn::Mlp& net, const Matrix& batch,
                   crowdrl::math::Backend* backend, int reps, Matrix* out) {
  // Warm-up: quantization pack, scratch allocation, branch predictors.
  net.InferInto(batch, nullptr, out, backend);
  net.InferInto(batch, nullptr, out, backend);
  std::vector<double> times;
  times.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const double start = Seconds();
    net.InferInto(batch, nullptr, out, backend);
    times.push_back(Seconds() - start);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

// Fraction of the reference top-k the other backend's top-k reproduces.
double TopKOverlap(const Matrix& ref, const Matrix& other, size_t k) {
  auto topk = [k](const Matrix& scores) {
    std::vector<size_t> order(scores.rows());
    std::iota(order.begin(), order.end(), size_t{0});
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                      order.end(), [&scores](size_t a, size_t b) {
                        if (scores.At(a, 0) != scores.At(b, 0)) {
                          return scores.At(a, 0) > scores.At(b, 0);
                        }
                        return a < b;
                      });
    order.resize(k);
    std::sort(order.begin(), order.end());
    return order;
  };
  std::vector<size_t> a = topk(ref);
  std::vector<size_t> b = topk(other);
  std::vector<size_t> both;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(both));
  return static_cast<double>(both.size()) / static_cast<double>(k);
}

size_t ArgMax(const Matrix& scores) {
  size_t best = 0;
  for (size_t r = 1; r < scores.rows(); ++r) {
    if (scores.At(r, 0) > scores.At(best, 0)) best = r;
  }
  return best;
}

// One small serve campaign end to end; returns committed answers/sec.
double RunServeLeg(double scale, bool quantized) {
  crowdrl::bench::BenchConfig bench_config;
  bench_config.scale = scale;
  crowdrl::data::Dataset dataset =
      crowdrl::bench::MakeDatasetVariant("S12CP", bench_config);
  std::vector<crowdrl::crowd::Annotator> pool = crowdrl::bench::MakePoolOfSize(
      5, dataset.num_classes, bench_config.base_seed + 7);
  const double budget = crowdrl::bench::BudgetFor("S12CP", bench_config);

  crowdrl::serve::ServiceOptions service_options;
  service_options.shared_threads = 2;
  crowdrl::serve::LabellingService service(service_options);
  crowdrl::serve::CampaignOptions options;
  options.name = quantized ? "backend_bench_q" : "backend_bench_ref";
  options.synchronous_inference = false;
  if (quantized) {
    options.config.agent.inference_backend =
        crowdrl::math::BackendKind::kQuantizedInt8;
  }
  crowdrl::serve::Campaign* campaign = service.AddCampaign(
      options, &dataset, &pool, budget, bench_config.base_seed);
  CROWDRL_CHECK(service.StartAll().ok());
  campaign->sessions().ConnectAll();

  std::atomic<bool> stop{false};
  std::vector<std::thread> annotator_threads;
  for (int j = 0; j < 5; ++j) {
    annotator_threads.emplace_back([&, j] {
      while (!stop.load(std::memory_order_acquire)) {
        std::optional<crowdrl::serve::WorkItem> item =
            campaign->sessions().RequestWork(j);
        if (item.has_value()) {
          campaign->ingest().Push(*item);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  const double start = Seconds();
  CROWDRL_CHECK(service.RunUntilComplete().ok());
  const double wall = Seconds() - start;
  stop.store(true, std::memory_order_release);
  for (std::thread& t : annotator_threads) t.join();
  return static_cast<double>(campaign->answers_committed()) / wall;
}

}  // namespace

int main(int argc, char** argv) {
  const BackendBenchConfig config = ParseBackendArgs(argc, argv);
  namespace math = crowdrl::math;

  // The serving network shape: StateFeaturizer features through the
  // QNetwork's default hidden stack to one Q value.
  const size_t feature_dim = crowdrl::rl::StateFeaturizer::kFeatureDim;
  const std::vector<size_t> sizes = {feature_dim, 64, 32, 1};
  const std::vector<crowdrl::nn::Activation> acts = {
      crowdrl::nn::Activation::kRelu, crowdrl::nn::Activation::kRelu,
      crowdrl::nn::Activation::kIdentity};
  Rng rng(1234);
  crowdrl::nn::Mlp net(sizes, acts, &rng);

  Matrix batch(config.batch, feature_dim);
  Rng feature_rng(99);
  for (size_t r = 0; r < batch.rows(); ++r) {
    for (size_t c = 0; c < feature_dim; ++c) {
      // StateFeaturizer emits values in [0, 1]-ish ranges; match that.
      batch.At(r, c) = feature_rng.Uniform();
    }
  }

  math::Backend* reference = math::ReferenceBackend();
  math::QuantizedCpuBackend quantized;  // default guard every 64th call

  Matrix ref_out;
  Matrix quant_out;
  const double ref_s =
      TimeForward(net, batch, reference, config.reps, &ref_out);
  const double quant_s =
      TimeForward(net, batch, &quantized, config.reps, &quant_out);
  const double speedup = ref_s / quant_s;
  const double ref_rows_per_sec = static_cast<double>(config.batch) / ref_s;
  const double quant_rows_per_sec =
      static_cast<double>(config.batch) / quant_s;

  // Bit-identity of the reference backend vs the historical naive loop.
  const bool reference_bit_identical = BitEqual(ref_out, NaiveForward(net, batch));

  // Quantized accuracy: end-to-end error, plus a guard-every-call audit —
  // every LinearNT in this pass is checked against the backend's documented
  // ElementErrorBound, so zero fallbacks means every element complied.
  double max_abs_error = 0.0;
  for (size_t i = 0; i < ref_out.size(); ++i) {
    max_abs_error = std::max(
        max_abs_error, std::abs(ref_out.data()[i] - quant_out.data()[i]));
  }
  math::QuantizedBackendOptions audit_options;
  audit_options.guard_period = 1;
  math::QuantizedCpuBackend audit(audit_options);
  Matrix audit_out;
  net.InferInto(batch, nullptr, &audit_out, &audit);
  const math::QuantizedCpuBackend::Stats audit_stats = audit.stats();
  const bool within_bound = !audit.FellBack();

  // Weight memory: serving weights in fp64 vs the int8 pack (+ scales).
  size_t weight_bytes_fp64 = 0;
  for (size_t l = 0; l < net.num_layers(); ++l) {
    weight_bytes_fp64 += net.layer_weight(l).size() * sizeof(double);
  }
  const size_t weight_bytes_quantized = quantized.CachedWeightBytes();

  // Selection agreement over the bench batch's Q scores.
  const size_t topk = std::min<size_t>(32, config.batch);
  const double overlap = TopKOverlap(ref_out, quant_out, topk);
  const bool argmax_identical = ArgMax(ref_out) == ArgMax(quant_out);

  const math::QuantizedCpuBackend::Stats stats = quantized.stats();
  std::printf("backend bench: batch=%zu reps=%d tier=%s\n", config.batch,
              config.reps, math::SimdTierName(math::ActiveSimdTier()));
  std::printf("  reference  %10.0f rows/sec  (%.3f ms)  biteq=%d\n",
              ref_rows_per_sec, ref_s * 1e3, reference_bit_identical);
  std::printf("  quantized  %10.0f rows/sec  (%.3f ms)  %.2fx  "
              "max_err=%.3e  within_bound=%d\n",
              quant_rows_per_sec, quant_s * 1e3, speedup, max_abs_error,
              within_bound);
  std::printf("  weights    fp64 %zu B  int8 %zu B  (%.2fx smaller)\n",
              weight_bytes_fp64, weight_bytes_quantized,
              static_cast<double>(weight_bytes_fp64) /
                  static_cast<double>(weight_bytes_quantized));
  std::printf("  selection  top-%zu overlap %.3f  argmax_identical=%d\n",
              topk, overlap, argmax_identical);

  double serve_ref = 0.0;
  double serve_quant = 0.0;
  if (config.serve_scale > 0.0) {
    serve_ref = RunServeLeg(config.serve_scale, /*quantized=*/false);
    serve_quant = RunServeLeg(config.serve_scale, /*quantized=*/true);
    std::printf("  serve      reference %.0f answers/sec  quantized %.0f "
                "answers/sec\n",
                serve_ref, serve_quant);
  }

  std::FILE* out = std::fopen(config.json.c_str(), "w");
  CROWDRL_CHECK(out != nullptr) << "cannot write " << config.json;
  std::fprintf(out, "{\n");
  crowdrl::bench::WriteBenchMeta(out, 1, "quantized-int8 vs reference-cpu");
  std::fprintf(out,
               "  \"bench\": \"backend\",\n"
               "  \"dims\": {\"in\": %zu, \"hidden\": [64, 32], \"out\": 1, "
               "\"batch\": %zu, \"reps\": %d},\n",
               feature_dim, config.batch, config.reps);
  std::fprintf(out,
               "  \"reference\": {\"rows_per_sec\": %.0f, "
               "\"ms_per_forward\": %.4f, \"bit_identical\": %s, "
               "\"weight_bytes\": %zu},\n",
               ref_rows_per_sec, ref_s * 1e3,
               reference_bit_identical ? "true" : "false", weight_bytes_fp64);
  std::fprintf(out,
               "  \"quantized\": {\"rows_per_sec\": %.0f, "
               "\"ms_per_forward\": %.4f, \"weight_bytes\": %zu, "
               "\"max_abs_error\": %.6e, \"guard_checks\": %llu, "
               "\"fallbacks\": %llu, \"audit_guard_checks\": %llu, "
               "\"audit_fallbacks\": %llu, "
               "\"within_documented_bound\": %s},\n",
               quant_rows_per_sec, quant_s * 1e3, weight_bytes_quantized,
               max_abs_error,
               static_cast<unsigned long long>(stats.guard_checks),
               static_cast<unsigned long long>(stats.fallbacks),
               static_cast<unsigned long long>(audit_stats.guard_checks),
               static_cast<unsigned long long>(audit_stats.fallbacks),
               within_bound ? "true" : "false");
  std::fprintf(out, "  \"speedup\": %.3f,\n", speedup);
  std::fprintf(out, "  \"weight_bytes_ratio\": %.3f,\n",
               static_cast<double>(weight_bytes_fp64) /
                   static_cast<double>(weight_bytes_quantized));
  std::fprintf(out,
               "  \"selection\": {\"topk\": %zu, \"topk_overlap\": %.4f, "
               "\"argmax_identical\": %s},\n",
               topk, overlap, argmax_identical ? "true" : "false");
  std::fprintf(out,
               "  \"serve\": {\"scale\": %g, "
               "\"reference_answers_per_sec\": %.1f, "
               "\"quantized_answers_per_sec\": %.1f, "
               "\"delta_pct\": %.2f}\n",
               config.serve_scale, serve_ref, serve_quant,
               serve_ref > 0.0 ? (serve_quant - serve_ref) / serve_ref * 100.0
                               : 0.0);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", config.json.c_str());
  return 0;
}
