// Figure 4: labelling quality (Precision / Recall / F1) of the six
// end-to-end frameworks on the seven dataset variants at equal budget.
//
// Paper shape: CrowdRL best everywhere (5-20% over baselines on speech),
// OBA worst, IDLE below DLTA, Hybrid best among baselines, and the
// concatenated views (S12CP, S3CP) beating the single views.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using crowdrl::bench::BenchConfig;
  using crowdrl::bench::Workload;

  BenchConfig config = crowdrl::bench::ParseArgs(argc, argv);
  crowdrl::bench::PrintBanner("Figure 4: quality at equal budget", config);

  const std::vector<std::string> variants = {"S12C", "S12P", "S12CP",
                                             "S3C",  "S3P",  "S3CP",
                                             "Fashion"};
  auto frameworks = crowdrl::bench::MakeAllFrameworks(
      crowdrl::bench::PretrainCrowdRl(config), &config);

  struct MetricTable {
    const char* title;
    crowdrl::Table table;
  };
  std::vector<std::string> header = {"method"};
  header.insert(header.end(), variants.begin(), variants.end());
  MetricTable tables[3] = {{"Precision", crowdrl::Table(header)},
                           {"Recall", crowdrl::Table(header)},
                           {"F1", crowdrl::Table(header)}};

  // One workload per variant, shared across frameworks (equal budget and
  // identical pools — the comparison the paper makes).
  std::vector<Workload> workloads;
  workloads.reserve(variants.size());
  for (const std::string& name : variants) {
    workloads.push_back(crowdrl::bench::MakeWorkload(name, config));
  }

  for (auto& framework : frameworks) {
    std::vector<double> precision, recall, f1;
    for (const Workload& workload : workloads) {
      auto outcome =
          crowdrl::bench::RunCell(framework.get(), workload, config);
      precision.push_back(outcome.mean.precision);
      recall.push_back(outcome.mean.recall);
      f1.push_back(outcome.mean.f1);
      std::fflush(stdout);
    }
    tables[0].table.AddRow(framework->name(), precision);
    tables[1].table.AddRow(framework->name(), recall);
    tables[2].table.AddRow(framework->name(), f1);
  }

  for (const MetricTable& t : tables) {
    std::printf("-- %s --\n", t.title);
    t.table.Print(std::cout);
    std::printf("\n");
  }
  return 0;
}
