// Million-object scale stress (DESIGN.md §13): drives the hierarchical
// candidate generator on a synthetic campaign far beyond the paper
// datasets and emits BENCH_scale.json with the evidence the scale claims
// rest on — scored-candidate sub-linearity (exact Q rows vs the
// |O| x |W| grid), the expanded-bucket fraction, wall-clock per
// iteration, peak RSS, and a checkpoint round-trip streamed section by
// section (io::SnapshotStreamWriter/Reader) that never materializes the
// full state in one buffer.
//
// The synthetic workload is index-smooth by construction: class
// probabilities follow a slow sinusoid over the object index and
// annotator qualities a slow sinusoid over the annotator index, so
// bucket/group feature boxes stay tight and the selection gate passes
// (the regime the hierarchy is built for — see the index-locality note
// in DESIGN.md §13). The gate keeps selections exact either way; a
// hostile ordering only costs fallbacks, which this bench reports.
//
// CI runs this at 100k objects with --max_wall_ms / --max_rss_mb budget
// gates (exit 1 on violation); the committed BENCH_scale.json comes from
// a full 1M x 1k run.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "crowd/answer_log.h"
#include "io/serializer.h"
#include "io/snapshot.h"
#include "math/matrix.h"
#include "rl/dqn_agent.h"
#include "rl/state.h"
#include "util/logging.h"
#include "util/random.h"

namespace {

using crowdrl::Matrix;
using crowdrl::Status;
using crowdrl::crowd::AnswerLog;
using crowdrl::rl::Assignment;
using crowdrl::rl::DqnAgent;
using crowdrl::rl::DqnAgentOptions;
using crowdrl::rl::StateView;

struct ScaleConfig {
  size_t objects = 1000000;
  size_t annotators = 1000;
  int iterations = 8;
  int k = 3;
  int pick = 32;
  int threads = 4;
  uint64_t seed = 1234;
  std::string json = "BENCH_scale.json";
  std::string checkpoint = "scale_ckpt.snap";
  /// Budget gates (0 = report only): total SelectBatch+Observe wall and
  /// process peak RSS.
  double max_wall_ms = 0.0;
  double max_rss_mb = 0.0;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--objects=N] [--annotators=N] [--iterations=N] "
               "[--k=N] [--pick=N] [--threads=N] [--seed=S] [--json=PATH] "
               "[--checkpoint=PATH] [--max_wall_ms=MS] [--max_rss_mb=MB]\n",
               argv0);
  std::exit(2);
}

ScaleConfig ParseScaleArgs(int argc, char** argv) {
  ScaleConfig config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--objects=", 10) == 0) {
      config.objects = static_cast<size_t>(std::atoll(arg + 10));
    } else if (std::strncmp(arg, "--annotators=", 13) == 0) {
      config.annotators = static_cast<size_t>(std::atoll(arg + 13));
    } else if (std::strncmp(arg, "--iterations=", 13) == 0) {
      config.iterations = std::atoi(arg + 13);
    } else if (std::strncmp(arg, "--k=", 4) == 0) {
      config.k = std::atoi(arg + 4);
    } else if (std::strncmp(arg, "--pick=", 7) == 0) {
      config.pick = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      config.threads = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      config.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      config.json = arg + 7;
    } else if (std::strncmp(arg, "--checkpoint=", 13) == 0) {
      config.checkpoint = arg + 13;
    } else if (std::strncmp(arg, "--max_wall_ms=", 14) == 0) {
      config.max_wall_ms = std::atof(arg + 14);
    } else if (std::strncmp(arg, "--max_rss_mb=", 13) == 0) {
      config.max_rss_mb = std::atof(arg + 13);
    } else {
      Usage(argv[0]);
    }
    if (config.objects == 0 || config.annotators == 0 ||
        config.iterations <= 0 || config.k <= 0 || config.pick <= 0 ||
        config.threads <= 0) {
      Usage(argv[0]);
    }
  }
  return config;
}

constexpr int kNumClasses = 3;

/// Index-smooth synthetic state: the borrowed-pointer backing of the
/// StateView the agent scores.
struct SyntheticCampaign {
  AnswerLog answers;
  Matrix class_probs;
  std::vector<bool> labelled;
  std::vector<double> costs;
  std::vector<double> qualities;
  std::vector<bool> is_expert;
  std::vector<bool> affordable;
  double budget = 0.0;
  double spent = 0.0;
  size_t num_labelled = 0;

  SyntheticCampaign(const ScaleConfig& config, crowdrl::Rng* rng)
      : answers(config.objects, config.annotators),
        class_probs(config.objects, kNumClasses),
        labelled(config.objects, false),
        costs(config.annotators, 1.0),
        qualities(config.annotators),
        is_expert(config.annotators, false),
        affordable(config.annotators, true) {
    const double two_pi = 2.0 * M_PI;
    // Fixed wavelengths (in objects / annotators, NOT fractions of the
    // campaign) keep the index-locality of the landscape independent of
    // scale: a 1024-object bucket always spans ~0.1 rad of the class
    // wave, so per-bucket feature boxes stay tight whether the run is
    // 20k or 1M objects.
    constexpr double kObjectWavelength = 1048576.0;
    constexpr double kAnnotatorWavelength = 4096.0;
    for (size_t i = 0; i < config.objects; ++i) {
      double phase = two_pi * static_cast<double>(i) / kObjectWavelength;
      double logits[kNumClasses];
      double max_logit = -1e300;
      for (int c = 0; c < kNumClasses; ++c) {
        // One slow wave per class plus a whisper of noise: class beliefs
        // vary across the campaign but are nearly constant inside any one
        // bucket.
        logits[c] = 1.5 * std::sin(phase + 2.1 * c) +
                    0.002 * rng->Uniform(-1.0, 1.0);
        max_logit = std::max(max_logit, logits[c]);
      }
      double denom = 0.0;
      for (int c = 0; c < kNumClasses; ++c) {
        logits[c] = std::exp(logits[c] - max_logit);
        denom += logits[c];
      }
      for (int c = 0; c < kNumClasses; ++c) {
        class_probs.At(i, c) = logits[c] / denom;
      }
    }
    for (size_t j = 0; j < config.annotators; ++j) {
      double phase = two_pi * static_cast<double>(j) / kAnnotatorWavelength;
      // Small amplitude keeps per-group quality boxes tight (group width
      // inflates every bucket bound equally, eating the discrimination
      // budget). The 1e-4 tilt breaks the sinusoid's mirror symmetry:
      // without it symmetric annotator pairs get bitwise-equal qualities,
      // hence bitwise-tied Q scores, and the selection gate (correctly)
      // refuses to certify tied top-k cuts.
      qualities[j] = 0.75 + 0.02 * std::sin(phase) +
                     1e-4 * static_cast<double>(j) /
                         static_cast<double>(config.annotators);
    }
    // Every answer costs 1; the budget covers the full run so
    // affordability never clips the grid.
    budget = static_cast<double>(config.iterations) *
             static_cast<double>(config.pick) * config.k;
  }

  StateView View() const {
    StateView view;
    view.answers = &answers;
    view.num_classes = kNumClasses;
    view.annotator_costs = &costs;
    view.annotator_qualities = &qualities;
    view.annotator_is_expert = &is_expert;
    view.class_probs = &class_probs;
    view.class_probs_version = 1;  // Never refreshed mid-run.
    view.labelled = &labelled;
    view.budget_fraction_remaining =
        budget > 0.0 ? (budget - spent) / budget : 0.0;
    view.fraction_labelled =
        static_cast<double>(num_labelled) / static_cast<double>(labelled.size());
    view.max_cost = 1.0;
    return view;
  }
};

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Streams the campaign checkpoint — one section per live answer-log
/// shard plus one agent section — and restores it through the
/// section-at-a-time reader, verifying the restored state byte-for-byte.
struct CheckpointReport {
  size_t file_bytes = 0;
  size_t sections = 0;
  size_t max_section_bytes = 0;
  double write_ms = 0.0;
  double read_ms = 0.0;
  bool verified = false;
};

CheckpointReport RoundTripCheckpoint(const ScaleConfig& config,
                                     const SyntheticCampaign& campaign,
                                     const DqnAgent& agent,
                                     const DqnAgentOptions& agent_options) {
  namespace io = crowdrl::io;
  CheckpointReport report;

  std::vector<size_t> live_shards;
  for (size_t s = 0; s < campaign.answers.num_shards(); ++s) {
    if (!campaign.answers.ShardEmpty(s)) live_shards.push_back(s);
  }

  auto write_start = std::chrono::steady_clock::now();
  io::SnapshotStreamWriter writer;
  Status status = writer.Open(config.checkpoint, live_shards.size() + 1);
  CROWDRL_CHECK(status.ok()) << status.ToString();
  size_t max_section = 0;
  for (size_t s : live_shards) {
    io::Writer payload;
    campaign.answers.SaveShardState(s, &payload);
    max_section = std::max(max_section, payload.size());
    status = writer.AppendSection("answers/shard-" + std::to_string(s),
                                  payload);
    CROWDRL_CHECK(status.ok()) << status.ToString();
  }
  {
    io::Writer payload;
    agent.SaveState(&payload);
    max_section = std::max(max_section, payload.size());
    status = writer.AppendSection("agent", payload);
    CROWDRL_CHECK(status.ok()) << status.ToString();
  }
  status = writer.Close();
  CROWDRL_CHECK(status.ok()) << status.ToString();
  report.write_ms = MsSince(write_start);
  report.sections = live_shards.size() + 1;
  report.max_section_bytes = max_section;

  auto read_start = std::chrono::steady_clock::now();
  io::SnapshotStreamReader reader;
  status = reader.Open(config.checkpoint);
  CROWDRL_CHECK(status.ok()) << status.ToString();
  AnswerLog restored_log(config.objects, config.annotators);
  std::string buffer;
  for (size_t s : live_shards) {
    io::Reader section;
    status = reader.ReadSection("answers/shard-" + std::to_string(s),
                                &buffer, &section);
    CROWDRL_CHECK(status.ok()) << status.ToString();
    status = restored_log.LoadShardState(&section);
    CROWDRL_CHECK(status.ok()) << status.ToString();
  }
  DqnAgent restored_agent(agent_options);
  {
    io::Reader section;
    status = reader.ReadSection("agent", &buffer, &section);
    CROWDRL_CHECK(status.ok()) << status.ToString();
    status = restored_agent.LoadState(&section);
    CROWDRL_CHECK(status.ok()) << status.ToString();
  }
  report.read_ms = MsSince(read_start);
  report.file_bytes = static_cast<size_t>(
      std::ifstream(config.checkpoint, std::ios::binary | std::ios::ate)
          .tellg());

  // Verification: the restored log re-serializes every live shard to the
  // same bytes, and the restored agent re-serializes to the same bytes.
  bool verified = restored_log.total_answers() ==
                  campaign.answers.total_answers();
  for (size_t s : live_shards) {
    io::Writer original, roundtrip;
    campaign.answers.SaveShardState(s, &original);
    restored_log.SaveShardState(s, &roundtrip);
    verified = verified && original.bytes() == roundtrip.bytes();
  }
  {
    io::Writer original, roundtrip;
    agent.SaveState(&original);
    restored_agent.SaveState(&roundtrip);
    verified = verified && original.bytes() == roundtrip.bytes();
  }
  report.verified = verified;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  ScaleConfig config = ParseScaleArgs(argc, argv);
  const double grid_pairs = static_cast<double>(config.objects) *
                            static_cast<double>(config.annotators);
  std::printf("== scale stress ==\n");
  std::printf("objects=%zu annotators=%zu (grid %.3g pairs) iterations=%d "
              "k=%d pick=%d threads=%d\n",
              config.objects, config.annotators, grid_pairs,
              config.iterations, config.k, config.pick, config.threads);

  crowdrl::Rng rng(config.seed);
  auto build_start = std::chrono::steady_clock::now();
  SyntheticCampaign campaign(config, &rng);

  DqnAgentOptions options;
  options.seed = config.seed + 17;
  options.threads = config.threads;
  options.q.threads = config.threads;
  options.train_steps_per_observe = 2;
  DqnAgent agent(options);
  agent.BeginEpisode(config.objects, config.annotators);
  double build_ms = MsSince(build_start);
  CROWDRL_CHECK(agent.HierEngaged())
      << "grid below hier_min_pairs; raise --objects/--annotators";

  std::vector<double> select_ms_per_iter;
  std::vector<size_t> scored_per_iter;
  std::vector<size_t> assignments_per_iter;
  auto run_start = std::chrono::steady_clock::now();
  double observe_ms_total = 0.0;
  size_t answers_recorded = 0;
  DqnAgent::HierStats last = agent.hier_stats();
  for (int iter = 0; iter < config.iterations; ++iter) {
    StateView view = campaign.View();
    auto select_start = std::chrono::steady_clock::now();
    std::vector<Assignment> batch =
        agent.SelectBatch(view, config.k, config.pick, campaign.affordable);
    select_ms_per_iter.push_back(MsSince(select_start));
    const DqnAgent::HierStats& stats = agent.hier_stats();
    scored_per_iter.push_back(stats.scored_pairs - last.scored_pairs);
    last = stats;
    assignments_per_iter.push_back(batch.size());
    if (batch.empty()) break;

    double reward = 0.0;
    for (const Assignment& assignment : batch) {
      for (int annotator : assignment.annotators) {
        // Simulated answer: correct with the annotator's quality.
        int truth = 0;
        double best = campaign.class_probs.At(assignment.object, 0);
        for (int c = 1; c < kNumClasses; ++c) {
          if (campaign.class_probs.At(assignment.object, c) > best) {
            best = campaign.class_probs.At(assignment.object, c);
            truth = c;
          }
        }
        int label = rng.Bernoulli(campaign.qualities[annotator])
                        ? truth
                        : rng.UniformInt(kNumClasses);
        campaign.answers.Record(assignment.object, annotator, label);
        campaign.spent += 1.0;
        ++answers_recorded;
      }
      reward += 1.0;
      campaign.labelled[assignment.object] = true;
      ++campaign.num_labelled;
    }
    reward /= static_cast<double>(batch.size());

    StateView next_view = campaign.View();
    auto observe_start = std::chrono::steady_clock::now();
    agent.Observe(reward, next_view, campaign.affordable, false);
    observe_ms_total += MsSince(observe_start);
  }
  double run_ms = MsSince(run_start);

  auto ckpt = RoundTripCheckpoint(config, campaign, agent, options);

  const DqnAgent::HierStats& stats = agent.hier_stats();
  double scored_fraction =
      static_cast<double>(stats.scored_pairs) /
      (grid_pairs * static_cast<double>(stats.iterations ? stats.iterations : 1));
  double expanded_fraction =
      stats.live_buckets > 0
          ? static_cast<double>(stats.expanded_buckets) /
                static_cast<double>(stats.live_buckets)
          : 0.0;
  size_t peak_rss_kb = crowdrl::bench::PeakRssKb();

  std::printf("run: %.1f ms total (%.1f ms observe), %zu answers\n", run_ms,
              observe_ms_total, answers_recorded);
  std::printf("hier: %zu/%zu gated, %zu full fallbacks, scored %.3g pairs "
              "(%.3g of grid x iters), expanded buckets %.4f of live\n",
              stats.gated_iterations, stats.iterations, stats.full_fallbacks,
              static_cast<double>(stats.scored_pairs), scored_fraction,
              expanded_fraction);
  std::printf("checkpoint: %zu sections, %zu bytes (max section %zu), "
              "write %.1f ms, read %.1f ms, verified=%s\n",
              ckpt.sections, ckpt.file_bytes, ckpt.max_section_bytes,
              ckpt.write_ms, ckpt.read_ms, ckpt.verified ? "yes" : "no");
  std::printf("peak rss: %.1f MB\n", static_cast<double>(peak_rss_kb) / 1024.0);

  std::FILE* out = std::fopen(config.json.c_str(), "w");
  CROWDRL_CHECK(out != nullptr) << "cannot write " << config.json;
  std::fprintf(out, "{\n");
  crowdrl::bench::WriteBenchMeta(out, config.threads);
  std::fprintf(out,
               "  \"config\": {\"objects\": %zu, \"annotators\": %zu, "
               "\"iterations\": %d, \"k\": %d, \"pick\": %d, \"threads\": %d, "
               "\"seed\": %llu},\n",
               config.objects, config.annotators, config.iterations, config.k,
               config.pick, config.threads,
               static_cast<unsigned long long>(config.seed));
  std::fprintf(out, "  \"grid_pairs\": %.0f,\n", grid_pairs);
  std::fprintf(out, "  \"build_ms\": %.2f,\n", build_ms);
  std::fprintf(out, "  \"run_ms\": %.2f,\n", run_ms);
  std::fprintf(out, "  \"observe_ms\": %.2f,\n", observe_ms_total);
  std::fprintf(out, "  \"answers_recorded\": %zu,\n", answers_recorded);
  std::fprintf(out, "  \"select_ms_per_iter\": [");
  for (size_t i = 0; i < select_ms_per_iter.size(); ++i) {
    std::fprintf(out, "%s%.2f", i == 0 ? "" : ", ", select_ms_per_iter[i]);
  }
  std::fprintf(out, "],\n");
  std::fprintf(out, "  \"scored_pairs_per_iter\": [");
  for (size_t i = 0; i < scored_per_iter.size(); ++i) {
    std::fprintf(out, "%s%zu", i == 0 ? "" : ", ", scored_per_iter[i]);
  }
  std::fprintf(out, "],\n");
  std::fprintf(out, "  \"assignments_per_iter\": [");
  for (size_t i = 0; i < assignments_per_iter.size(); ++i) {
    std::fprintf(out, "%s%zu", i == 0 ? "" : ", ", assignments_per_iter[i]);
  }
  std::fprintf(out, "],\n");
  std::fprintf(out,
               "  \"hier\": {\"iterations\": %zu, \"gated_iterations\": %zu, "
               "\"full_fallbacks\": %zu, \"rounds\": %zu, \"scored_pairs\": "
               "%zu, \"enumerated_pairs\": %zu, \"rep_refreshes\": %zu, "
               "\"expanded_buckets\": %zu, \"live_buckets\": %zu, "
               "\"scored_fraction_of_grid\": %.3e, "
               "\"expanded_bucket_fraction\": %.6f},\n",
               stats.iterations, stats.gated_iterations, stats.full_fallbacks,
               stats.rounds, stats.scored_pairs, stats.enumerated_pairs,
               stats.rep_refreshes, stats.expanded_buckets, stats.live_buckets,
               scored_fraction, expanded_fraction);
  std::fprintf(out,
               "  \"checkpoint\": {\"file_bytes\": %zu, \"sections\": %zu, "
               "\"max_section_bytes\": %zu, \"write_ms\": %.2f, \"read_ms\": "
               "%.2f, \"verified\": %s},\n",
               ckpt.file_bytes, ckpt.sections, ckpt.max_section_bytes,
               ckpt.write_ms, ckpt.read_ms, ckpt.verified ? "true" : "false");
  std::fprintf(out, "  \"peak_rss_kb\": %zu\n", peak_rss_kb);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", config.json.c_str());

  // Budget gates (CI smoke): fail loudly, never silently.
  int violations = 0;
  if (!ckpt.verified) {
    std::fprintf(stderr, "FAIL: checkpoint round-trip not byte-identical\n");
    ++violations;
  }
  if (config.max_wall_ms > 0.0 && run_ms > config.max_wall_ms) {
    std::fprintf(stderr, "FAIL: run wall %.1f ms > budget %.1f ms\n", run_ms,
                 config.max_wall_ms);
    ++violations;
  }
  double rss_mb = static_cast<double>(peak_rss_kb) / 1024.0;
  if (config.max_rss_mb > 0.0 && rss_mb > config.max_rss_mb) {
    std::fprintf(stderr, "FAIL: peak RSS %.1f MB > budget %.1f MB\n", rss_mb,
                 config.max_rss_mb);
    ++violations;
  }
  return violations == 0 ? 0 : 1;
}
