// Figure 8: ablation — accuracy of M1 (random task selection), M2 (random
// task assignment), M3 (PM inference instead of the joint model) against
// full CrowdRL on the three datasets.
//
// Paper shape: every ablation loses accuracy; M3 hurts most on Speech12,
// while on Speech3 and Fashion M1/M2 sit above M3 (unified TS+TA matters
// most there).

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/ablations.h"
#include "bench/bench_common.h"
#include "core/crowdrl.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using crowdrl::bench::BenchConfig;
  using crowdrl::bench::Workload;

  BenchConfig config = crowdrl::bench::ParseArgs(argc, argv);
  crowdrl::bench::PrintBanner("Figure 8: ablations (accuracy)", config);

  const std::vector<std::string> datasets = {"S12CP", "S3CP", "Fashion"};
  std::vector<double> pretrained = crowdrl::bench::PretrainCrowdRl(config);

  std::vector<std::string> header = {"method"};
  header.insert(header.end(), datasets.begin(), datasets.end());
  crowdrl::Table table(header);

  crowdrl::core::CrowdRlConfig base;
  base.pretrained_q_params = pretrained;

  std::vector<std::unique_ptr<crowdrl::core::LabellingFramework>> variants;
  variants.push_back(crowdrl::baselines::MakeM1(base));
  variants.push_back(crowdrl::baselines::MakeM2(base));
  variants.push_back(crowdrl::baselines::MakeM3(base));
  variants.push_back(
      std::make_unique<crowdrl::core::CrowdRlFramework>(base));

  std::vector<Workload> workloads;
  for (const std::string& name : datasets) {
    workloads.push_back(crowdrl::bench::MakeWorkload(name, config));
  }

  for (auto& variant : variants) {
    std::vector<double> accuracies;
    for (const Workload& workload : workloads) {
      auto outcome =
          crowdrl::bench::RunCell(variant.get(), workload, config);
      accuracies.push_back(outcome.mean.accuracy);
    }
    const char* label = variant->name();
    // Paper labels: M1 / M2 / M3 / CrowdRL.
    std::string row_label = label;
    if (row_label == "CrowdRL-M1") row_label = "M1";
    if (row_label == "CrowdRL-M2") row_label = "M2";
    if (row_label == "CrowdRL-M3") row_label = "M3";
    table.AddRow(row_label, accuracies);
    std::fflush(stdout);
  }
  table.Print(std::cout);
  return 0;
}
