// Design-choice ablation (DESIGN.md Section 4): the paper's UCB1-style
// dynamic action selection (Eq. 6) against epsilon-greedy and pure greedy
// exploration, at equal budget.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "core/crowdrl.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using crowdrl::bench::BenchConfig;
  using crowdrl::bench::Workload;
  using crowdrl::rl::ExplorationMode;

  BenchConfig config = crowdrl::bench::ParseArgs(argc, argv);
  crowdrl::bench::PrintBanner(
      "Ablation: exploration strategy (accuracy / F1)", config);

  struct Variant {
    const char* label;
    ExplorationMode mode;
    bool double_dqn;
  };
  const std::vector<Variant> modes = {
      {"UCB (Eq. 6)", ExplorationMode::kUcb, false},
      {"UCB + Double DQN", ExplorationMode::kUcb, true},
      {"epsilon-greedy", ExplorationMode::kEpsilonGreedy, false},
      {"greedy", ExplorationMode::kGreedy, false},
  };
  const std::vector<std::string> datasets = {"S12CP", "Fashion"};
  std::vector<double> pretrained = crowdrl::bench::PretrainCrowdRl(config);

  std::vector<std::string> header = {"exploration"};
  for (const std::string& d : datasets) {
    header.push_back(d + " acc");
    header.push_back(d + " F1");
  }
  crowdrl::Table table(header);

  std::vector<Workload> workloads;
  for (const std::string& name : datasets) {
    workloads.push_back(crowdrl::bench::MakeWorkload(name, config));
  }

  for (const auto& [label, mode, double_dqn] : modes) {
    std::vector<double> cells;
    for (const Workload& workload : workloads) {
      crowdrl::core::CrowdRlConfig crowdrl_config;
      crowdrl_config.agent.exploration = mode;
      crowdrl_config.agent.q.double_dqn = double_dqn;
      crowdrl_config.pretrained_q_params = pretrained;
      crowdrl::core::CrowdRlFramework framework(std::move(crowdrl_config));
      auto outcome = crowdrl::bench::RunCell(&framework, workload, config);
      cells.push_back(outcome.mean.accuracy);
      cells.push_back(outcome.mean.f1);
    }
    table.AddRow(label, cells);
    std::fflush(stdout);
  }
  table.Print(std::cout);
  return 0;
}
