// Serve-mode load bench: N concurrent campaigns multiplexed over one
// LabellingService, with simulated annotator clients (Poisson think
// times), session churn (periodic disconnect / reconnect with work in
// flight), and asynchronous truth inference on the shared background
// worker. Runs fully instrumented — lifecycle tracing, flight recorder,
// and health watchdog all on — and emits BENCH_serve.json with
// per-campaign answers/sec, the answer-lifecycle stage breakdown
// (dispatch→deliver→arrive→commit→observe, streaming p50/p90/p99 per
// stage), TI swap counts, and the time the pump spent stalled waiting on
// a truth-inference swap.
//
// Flags (self-parsed; this bench's knobs are serve-specific):
//   --campaigns=N        concurrent campaigns            (default 2)
//   --scale=F            dataset/budget scale            (default 0.05)
//   --annotators=M       pool size per campaign          (default 5)
//   --mean_latency_us=U  mean annotator think time       (default 300)
//   --churn_period_ms=P  disconnect one annotator every P ms (0 = off,
//                        default 25)
//   --shared_threads=T   shared selection pool size      (default 2)
//   --objects=N          override objects per campaign   (0 = dataset
//                        default, default 0)
//   --json=PATH          output report                   (default
//                        BENCH_serve.json)
//   --lifecycle_json=P   per-campaign stage-breakdown report (empty = off)
//   --flight_dump=P      dump the flight-recorder ring at exit (decode
//                        with bench/flight_decode; empty = off)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "io/flight_dump.h"
#include "obs/lifecycle.h"
#include "serve/service.h"
#include "util/logging.h"

namespace {

using crowdrl::bench::BenchConfig;
using crowdrl::serve::Campaign;
using crowdrl::serve::CampaignOptions;
using crowdrl::serve::LabellingService;
using crowdrl::serve::ServiceOptions;
using crowdrl::serve::WorkItem;

struct ServeBenchConfig {
  int campaigns = 2;
  double scale = 0.05;
  int annotators = 5;
  double mean_latency_us = 300.0;
  int churn_period_ms = 25;
  int shared_threads = 2;
  size_t objects = 0;  // 0 keeps each dataset variant's own size.
  /// Serving compute backend for every campaign's selection forwards:
  /// "reference" or "quantized" (math::BackendKind::kQuantizedInt8).
  std::string backend = "reference";
  std::string json = "BENCH_serve.json";
  std::string lifecycle_json;  // Empty = no lifecycle report.
  std::string flight_dump;     // Empty = no flight-recorder dump.
};

ServeBenchConfig ParseServeArgs(int argc, char** argv) {
  ServeBenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--campaigns=")) {
      config.campaigns = std::atoi(v);
    } else if (const char* v = value("--scale=")) {
      config.scale = std::atof(v);
    } else if (const char* v = value("--annotators=")) {
      config.annotators = std::atoi(v);
    } else if (const char* v = value("--mean_latency_us=")) {
      config.mean_latency_us = std::atof(v);
    } else if (const char* v = value("--churn_period_ms=")) {
      config.churn_period_ms = std::atoi(v);
    } else if (const char* v = value("--shared_threads=")) {
      config.shared_threads = std::atoi(v);
    } else if (const char* v = value("--objects=")) {
      config.objects = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--backend=")) {
      config.backend = v;
    } else if (const char* v = value("--json=")) {
      config.json = v;
    } else if (const char* v = value("--lifecycle_json=")) {
      config.lifecycle_json = v;
    } else if (const char* v = value("--flight_dump=")) {
      config.flight_dump = v;
    } else {
      std::fprintf(stderr,
                   "usage: serve_load [--campaigns=N] [--scale=F] "
                   "[--annotators=M] [--mean_latency_us=U] "
                   "[--churn_period_ms=P] [--shared_threads=T] "
                   "[--objects=N] [--backend=reference|quantized] "
                   "[--json=PATH] [--lifecycle_json=PATH] "
                   "[--flight_dump=PATH]\n");
      std::exit(2);
    }
  }
  CROWDRL_CHECK(config.campaigns >= 1 && config.annotators >= 2);
  CROWDRL_CHECK(config.backend == "reference" ||
                config.backend == "quantized")
      << "--backend must be reference or quantized";
  return config;
}

/// One campaign's "stages" JSON object from its lifecycle store:
/// {"dispatch_deliver":{"count":N,"p50_us":...,"p90_us":...,"p99_us":...,
/// "max_us":...},...}.
void WriteStageBreakdown(std::FILE* out, const Campaign& campaign) {
  std::fprintf(out, "\"stages\": {");
  for (size_t s = 0; s < crowdrl::obs::kNumLifecycleStages; ++s) {
    const auto stage = static_cast<crowdrl::obs::LifecycleStage>(s);
    const crowdrl::obs::LifecycleSample::StageSample sample =
        crowdrl::obs::SummarizeStage(campaign.lifecycle().stage(stage));
    std::fprintf(out,
                 "%s\"%s\": {\"count\": %llu, \"p50_us\": %.1f, "
                 "\"p90_us\": %.1f, \"p99_us\": %.1f, \"max_us\": %.1f}",
                 s == 0 ? "" : ", ", crowdrl::obs::LifecycleStageName(stage),
                 static_cast<unsigned long long>(sample.count), sample.p50_us,
                 sample.p90_us, sample.p99_us, sample.max_us);
  }
  std::fprintf(out, "}");
}

}  // namespace

int main(int argc, char** argv) {
  const ServeBenchConfig serve_config = ParseServeArgs(argc, argv);

  BenchConfig bench_config;
  bench_config.scale = serve_config.scale;
  bench_config.objects_override = serve_config.objects;

  // Alternate the two speech workloads across campaigns so the scheduler
  // multiplexes genuinely different datasets / budgets.
  const std::vector<std::string> variants = {"S12CP", "S3CP"};
  struct CampaignSetup {
    std::string name;
    crowdrl::data::Dataset dataset;
    std::vector<crowdrl::crowd::Annotator> pool;
    double budget = 0.0;
  };
  std::vector<CampaignSetup> setups(
      static_cast<size_t>(serve_config.campaigns));
  for (int c = 0; c < serve_config.campaigns; ++c) {
    const std::string& variant = variants[c % variants.size()];
    CampaignSetup& setup = setups[static_cast<size_t>(c)];
    setup.name = "campaign" + std::to_string(c) + "_" + variant;
    setup.dataset = crowdrl::bench::MakeDatasetVariant(variant, bench_config);
    setup.pool = crowdrl::bench::MakePoolOfSize(
        serve_config.annotators, setup.dataset.num_classes,
        bench_config.base_seed + static_cast<uint64_t>(c) * 13);
    setup.budget = crowdrl::bench::BudgetFor(variant, bench_config);
  }

  ServiceOptions service_options;
  service_options.shared_threads = serve_config.shared_threads;
  // The observability load test runs fully instrumented: lifecycle
  // tracing + flight recorder + health watchdog (hot-path overhead is
  // budgeted separately by micro_components --obs_overhead_json).
  service_options.watchdog.enabled = true;
  LabellingService service(service_options);
  std::vector<Campaign*> campaigns;
  for (int c = 0; c < serve_config.campaigns; ++c) {
    CampaignSetup& setup = setups[static_cast<size_t>(c)];
    CampaignOptions options;
    options.name = setup.name;
    options.synchronous_inference = false;  // Async TI is the serve mode.
    options.config.obs.enabled = true;
    options.config.obs.lifecycle = true;
    options.config.obs.flight_recorder = true;
    if (serve_config.backend == "quantized") {
      options.config.agent.inference_backend =
          crowdrl::math::BackendKind::kQuantizedInt8;
    }
    Campaign* campaign = service.AddCampaign(
        options, &setup.dataset, &setup.pool, setup.budget,
        bench_config.base_seed + static_cast<uint64_t>(c));
    campaigns.push_back(campaign);
  }
  CROWDRL_CHECK(service.StartAll().ok());
  for (Campaign* campaign : campaigns) campaign->sessions().ConnectAll();

  // Annotator clients: one thread per (campaign, annotator), Poisson
  // think time between taking a task and reporting its answer.
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int c = 0; c < serve_config.campaigns; ++c) {
    Campaign* campaign = campaigns[static_cast<size_t>(c)];
    for (int j = 0; j < serve_config.annotators; ++j) {
      threads.emplace_back([&, campaign, c, j] {
        std::mt19937 rng(static_cast<unsigned>(c * 1000 + j + 1));
        std::exponential_distribution<double> think(
            1.0 / serve_config.mean_latency_us);
        while (!stop.load(std::memory_order_acquire)) {
          std::optional<WorkItem> item = campaign->sessions().RequestWork(j);
          if (item.has_value()) {
            std::this_thread::sleep_for(std::chrono::microseconds(
                static_cast<int64_t>(think(rng))));
            campaign->ingest().Push(*item);
          } else {
            std::this_thread::yield();
          }
        }
      });
    }
    // Churn: one rotating annotator per campaign drops off briefly, with
    // whatever work was queued for it abandoned mid-round.
    if (serve_config.churn_period_ms > 0) {
      threads.emplace_back([&, campaign, c] {
        int next = 0;
        while (!stop.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(serve_config.churn_period_ms));
          const int gone = next++ % serve_config.annotators;
          campaign->sessions().Disconnect(gone);
          std::this_thread::sleep_for(
              std::chrono::milliseconds(serve_config.churn_period_ms / 4 + 1));
          campaign->sessions().Connect(gone);
        }
      });
    }
  }

  // RSS sampler: polls process residency while campaigns run and books
  // the peak against every campaign still live at the sample. Residency
  // is process-wide, so a campaign's figure reads as "peak footprint
  // while this campaign was active", not an exclusive attribution.
  std::vector<std::atomic<size_t>> campaign_peak_rss_kb(campaigns.size());
  for (auto& peak : campaign_peak_rss_kb) peak.store(0);
  std::thread rss_sampler([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const size_t rss = crowdrl::bench::CurrentRssKb();
      for (size_t c = 0; c < campaigns.size(); ++c) {
        if (campaigns[c]->done()) continue;
        size_t prev = campaign_peak_rss_kb[c].load();
        while (prev < rss &&
               !campaign_peak_rss_kb[c].compare_exchange_weak(prev, rss)) {
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  const auto wall_start = std::chrono::steady_clock::now();
  CROWDRL_CHECK(service.RunUntilComplete().ok());
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  stop.store(true, std::memory_order_release);
  rss_sampler.join();
  for (std::thread& t : threads) t.join();
  const size_t peak_rss_kb = crowdrl::bench::PeakRssKb();

  std::FILE* out = std::fopen(serve_config.json.c_str(), "w");
  CROWDRL_CHECK(out != nullptr) << "cannot open " << serve_config.json;
  std::fprintf(out, "{\n");
  crowdrl::bench::WriteBenchMeta(
      out, serve_config.shared_threads,
      serve_config.backend == "quantized" ? "quantized-int8"
                                          : "reference-cpu");
  std::fprintf(out,
               "  \"config\": {\"campaigns\": %d, \"scale\": %g, "
               "\"annotators\": %d, \"mean_latency_us\": %g, "
               "\"churn_period_ms\": %d, \"shared_threads\": %d, "
               "\"objects\": %zu},\n",
               serve_config.campaigns, serve_config.scale,
               serve_config.annotators, serve_config.mean_latency_us,
               serve_config.churn_period_ms, serve_config.shared_threads,
               serve_config.objects);
  std::fprintf(out, "  \"wall_seconds\": %.3f,\n", wall_seconds);

  size_t total_answers = 0;
  std::fprintf(out, "  \"campaigns\": [\n");
  for (size_t c = 0; c < campaigns.size(); ++c) {
    Campaign* campaign = campaigns[c];
    total_answers += campaign->answers_committed();
    const auto commit_sample = crowdrl::obs::SummarizeStage(
        campaign->lifecycle().stage(
            crowdrl::obs::LifecycleStage::kArriveToCommit));
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"answers\": %zu, \"rounds\": %zu, "
        "\"answers_per_sec\": %.1f, ",
        setups[c].name.c_str(), campaign->answers_committed(),
        campaign->rounds_completed(),
        static_cast<double>(campaign->answers_committed()) / wall_seconds);
    WriteStageBreakdown(out, *campaign);
    std::fprintf(
        out,
        ", \"ti_swaps\": %zu, \"ti_stall_ms\": %.3f, \"abandoned\": %zu, "
        "\"budget_spent\": %.2f, \"iterations\": %zu, "
        "\"peak_rss_kb\": %zu}%s\n",
        campaign->ti_swaps(),
        static_cast<double>(campaign->ti_stall_ns()) / 1e6,
        campaign->abandoned_items(), campaign->result().budget_spent,
        campaign->result().iterations, campaign_peak_rss_kb[c].load(),
        c + 1 < campaigns.size() ? "," : "");
    std::printf(
        "%-22s answers %6zu  rounds %4zu  commit p50 %8.1fus  "
        "p99 %8.1fus  ti_swaps %3zu  stall %7.1fms  abandoned %4zu\n",
        setups[c].name.c_str(), campaign->answers_committed(),
        campaign->rounds_completed(), commit_sample.p50_us,
        commit_sample.p99_us, campaign->ti_swaps(),
        static_cast<double>(campaign->ti_stall_ns()) / 1e6,
        campaign->abandoned_items());
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"peak_rss_kb\": %zu,\n", peak_rss_kb);
  std::fprintf(out, "  \"total_answers_per_sec\": %.1f\n",
               static_cast<double>(total_answers) / wall_seconds);
  std::fprintf(out, "}\n");
  std::fclose(out);

  if (!serve_config.lifecycle_json.empty()) {
    CROWDRL_CHECK(crowdrl::obs::LifecycleRegistry::Get().WriteJson(
        serve_config.lifecycle_json))
        << "cannot write " << serve_config.lifecycle_json;
    std::printf("lifecycle report -> %s\n",
                serve_config.lifecycle_json.c_str());
  }
  if (!serve_config.flight_dump.empty()) {
    CROWDRL_CHECK(
        crowdrl::io::DumpFlightRecorder(serve_config.flight_dump.c_str()))
        << "cannot write " << serve_config.flight_dump;
    std::printf("flight-recorder dump -> %s\n",
                serve_config.flight_dump.c_str());
  }
  std::printf("total: %.1f answers/sec over %.2fs -> %s\n",
              static_cast<double>(total_answers) / wall_seconds, wall_seconds,
              serve_config.json.c_str());
  return 0;
}
