// Design-choice ablation (DESIGN.md Section 4): which groups of state
// features the Q-network actually needs. Each row masks one group of the
// per-action feature vector to zero and reruns CrowdRL at equal budget.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "core/crowdrl.h"
#include "rl/state.h"
#include "util/table.h"

namespace {

// Feature layout (rl/state.cc): 0 bias, 1-3 labelling history,
// 4-5 classifier uncertainty, 6-9 annotator quality/cost, 10-11 global.
std::vector<bool> MaskOut(std::initializer_list<int> dropped) {
  std::vector<bool> mask(crowdrl::rl::StateFeaturizer::kFeatureDim, true);
  for (int f : dropped) mask[static_cast<size_t>(f)] = false;
  return mask;
}

}  // namespace

int main(int argc, char** argv) {
  using crowdrl::bench::BenchConfig;
  using crowdrl::bench::Workload;

  BenchConfig config = crowdrl::bench::ParseArgs(argc, argv);
  crowdrl::bench::PrintBanner("Ablation: state feature groups (accuracy)",
                              config);

  const std::vector<std::pair<const char*, std::vector<bool>>> variants = {
      {"all features", {}},
      {"- labelling history (1-3)", MaskOut({1, 2, 3})},
      {"- classifier uncertainty (4-5)", MaskOut({4, 5})},
      {"- annotator quality/cost (6-9)", MaskOut({6, 7, 8, 9})},
      {"- global progress (10-11)", MaskOut({10, 11})},
  };
  const std::vector<std::string> datasets = {"S12CP", "S3CP"};

  std::vector<std::string> header = {"state features"};
  header.insert(header.end(), datasets.begin(), datasets.end());
  crowdrl::Table table(header);

  std::vector<Workload> workloads;
  for (const std::string& name : datasets) {
    workloads.push_back(crowdrl::bench::MakeWorkload(name, config));
  }

  for (const auto& [label, mask] : variants) {
    std::vector<double> cells;
    for (const Workload& workload : workloads) {
      crowdrl::core::CrowdRlConfig crowdrl_config;
      crowdrl_config.agent.feature_mask = mask;
      crowdrl::core::CrowdRlFramework framework(std::move(crowdrl_config));
      auto outcome = crowdrl::bench::RunCell(&framework, workload, config);
      cells.push_back(outcome.mean.accuracy);
    }
    table.AddRow(label, cells);
    std::fflush(stdout);
  }
  table.Print(std::cout);
  return 0;
}
