#ifndef CROWDRL_BENCH_BENCH_COMMON_H_
#define CROWDRL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/framework.h"
#include "crowd/annotator.h"
#include "data/dataset.h"
#include "eval/experiment.h"
#include "math/backend.h"

namespace crowdrl::bench {

/// Stamps the shared metadata header into an already-open JSON object —
/// call right after writing the opening "{":
///   "meta": {"backend": "...", "simd_tier": "...", "threads": N},
/// Every BENCH_*.json writer emits this so committed results say which
/// compute backend (math::Backend::Name()), SIMD tier and thread count
/// produced them. Header-only so binaries that don't link
/// crowdrl_bench_common (micro_components) can stamp too.
inline void WriteBenchMeta(std::FILE* out, int threads,
                           const char* backend = "reference-cpu") {
  std::fprintf(out,
               "  \"meta\": {\"backend\": \"%s\", \"simd_tier\": \"%s\", "
               "\"threads\": %d},\n",
               backend, math::SimdTierName(math::ActiveSimdTier()), threads);
}

/// Command-line knobs shared by all figure benches.
///
/// Defaults are scaled to keep each bench interactive; `--full` restores
/// the paper's dataset sizes, prosodic dimensionality and budgets.
struct BenchConfig {
  /// Fraction of each paper dataset (objects and budget scale together).
  double scale = 0.25;
  /// Seeds per cell (metrics are averaged).
  int seeds = 1;
  bool full = false;
  uint64_t base_seed = 100;
  /// Largest worker-thread count exercised by the benches that sweep
  /// thread counts (fig5's candidate-scoring sweep).
  int threads = 4;
  /// Checkpointing for the CrowdRL entry (crash-safe long benches):
  /// directory for rotating checkpoint files (empty = off).
  std::string checkpoint_dir;
  /// Checkpoint every N labelling iterations (0 = off).
  size_t checkpoint_every = 0;
  /// Resume the CrowdRL run from the newest checkpoint in checkpoint_dir.
  bool resume = false;
  /// Observability (DESIGN.md §10): --obs enables the metrics hooks
  /// process-wide (so non-framework bench stages are covered too);
  /// --metrics_out makes the CrowdRL entry append one metrics record per
  /// labelling iteration; --trace_out additionally records trace spans
  /// and exports Chrome trace-event JSON at the end of the CrowdRL run.
  bool obs = false;
  std::string metrics_out;
  std::string trace_out;
  /// Overrides the object count of every dataset variant (0 = use the
  /// paper size scaled by --scale). Lets the serve bench and the scale
  /// smoke grow campaigns beyond the paper datasets.
  size_t objects_override = 0;
};

/// Parses --scale=F --seeds=N --full --seed=S --threads=T
/// --checkpoint-dir=D --checkpoint-every=N --resume --obs
/// --metrics_out=PATH --trace_out=PATH; unknown flags abort with a usage
/// message.
BenchConfig ParseArgs(int argc, char** argv);

/// One evaluation workload: dataset + pool + budget.
struct Workload {
  data::Dataset dataset;
  std::vector<crowd::Annotator> pool;
  double budget = 0.0;
};

/// Builds a dataset variant by paper name: "S12C", "S12P", "S12CP",
/// "S3C", "S3P", "S3CP", "Fashion".
data::Dataset MakeDatasetVariant(const std::string& name,
                                 const BenchConfig& config);

/// Default pool for a dataset family (Section VI-B1: |W| = 5 for the
/// speech datasets, 3 for Fashion; worker cost 1, expert cost 10).
std::vector<crowd::Annotator> MakePoolFor(const std::string& dataset_name,
                                          int num_classes, uint64_t seed);

/// Pool of an explicit size (Fig. 6's |W| sweep).
std::vector<crowd::Annotator> MakePoolOfSize(int total, int num_classes,
                                             uint64_t seed);

/// Paper budget for a dataset family (10,000 speech / 160,000 Fashion),
/// scaled with the config.
double BudgetFor(const std::string& dataset_name, const BenchConfig& config);

/// Complete workload for a named variant under the shared defaults.
Workload MakeWorkload(const std::string& name, const BenchConfig& config);

/// Offline Q-network pre-training (the paper's "cross training
/// methodology": the DQN is trained on workloads other than the one under
/// evaluation). Runs CrowdRL over two held-out synthetic workloads and
/// returns the resulting parameters. Cached per (config) call site by the
/// caller if reuse is wanted — the call itself takes a few seconds.
std::vector<double> PretrainCrowdRl(const BenchConfig& config);

/// The six frameworks of Fig. 4-7, in the paper's order:
/// DLTA, OBA, IDLE, DALC, Hybrid, CrowdRL. `pretrained_q` (may be empty)
/// warm-starts CrowdRL's Q-network. When `config` is non-null, its
/// checkpoint flags are applied to the CrowdRL entry (the baselines have
/// no mutable state worth snapshotting).
std::vector<std::unique_ptr<core::LabellingFramework>> MakeAllFrameworks(
    const std::vector<double>& pretrained_q = {},
    const BenchConfig* config = nullptr);

/// Runs one cell and returns the outcome; aborts the bench on error.
eval::ExperimentOutcome RunCell(core::LabellingFramework* framework,
                                const Workload& workload,
                                const BenchConfig& config);

/// Prints the standard bench banner (figure id, scale, seeds).
void PrintBanner(const std::string& figure, const BenchConfig& config);

/// Resident-set size of this process right now, in KiB (Linux
/// /proc/self/status VmRSS; 0 when unreadable).
size_t CurrentRssKb();

/// Lifetime peak resident-set size, in KiB (VmHWM, falling back to
/// getrusage ru_maxrss; 0 when neither is available).
size_t PeakRssKb();

}  // namespace crowdrl::bench

#endif  // CROWDRL_BENCH_BENCH_COMMON_H_
